(** In-process crash injection for the write path.

    The storage engine routes every byte it writes and every fsync,
    rename and directory sync through {!Io}, and {!Io} consults this
    module before each. A test arms one failpoint, drives the engine
    until {!Crash} fires, then reopens the directory and checks the
    recovery invariant. Modes:

    - {!arm_cut_bytes}[ n]: the write path dies after [n] more bytes
      reach the kernel — the [n]th byte boundary of the next writes is
      where the "torn write" ends. Sweeping [n] over the byte count of
      a workload (measured with {!arm_counting}) visits every possible
      torn-frame prefix.
    - {!arm_at_event}[ point ~n]: the process dies {e instead of}
      performing the [n]th occurrence of the named sync/rename point
      (e.g. ["wal.fsync"], ["snapshot.rename"]) — the skipped-fsync and
      crash-between-rename-and-truncate cases.

    [lose_unsynced] additionally models the page cache evaporating: at
    crash time every open file is truncated back to its last-fsynced
    length, so data that was written but never synced is gone.

    Failpoints are one-shot: firing disarms, so recovery code running
    after the simulated crash does real I/O. *)

exception Crash of string
(** The simulated power cut. Raised out of the {!Io} operation that hit
    the armed failpoint, after open files have been truncated/closed. *)

val arm_cut_bytes : ?lose_unsynced:bool -> int -> unit
(** Crash after [n] more written bytes ([n = 0] dies on the very next
    write, before any of its bytes land). *)

val arm_at_event : ?lose_unsynced:bool -> string -> n:int -> unit
(** Crash instead of the [n]th (1-based) occurrence of event [point]. *)

val arm_counting : unit -> unit
(** Observe-only mode: count bytes written and event occurrences so a
    test can enumerate the crash matrix for a workload. *)

type syscall_outcome = [ `Short of int | `Errno of Unix.error ]

val arm_syscalls : syscall_outcome list -> unit
(** Script the next write(2) attempts of the {!Io} retry loop, one
    outcome per syscall: [`Short k] makes the kernel accept only the
    first [k] bytes (a genuine short write), [`Errno e] makes the
    attempt raise [Unix_error (e, _, _)] without writing anything —
    [EINTR]/[EAGAIN] exercise the transient-retry path, anything else
    (say [ENOSPC]) the fatal path, whose partial progress must still be
    reflected in the file bookkeeping. When the list is exhausted,
    syscalls behave normally. Orthogonal to the byte/event failpoints;
    cleared by {!disarm}. *)

val counted_bytes : unit -> int
val counted_events : unit -> (string * int) list
(** Occurrence counts per event point, sorted by name. *)

val disarm : unit -> unit
val armed : unit -> bool

(** {2 Io-side interface} *)

val on_write : int -> [ `All | `Partial of int ]
(** Called with the byte count about to be written. [`Partial k] means:
    write only the first [k] bytes, then {!Io.crash}. *)

val on_syscall : requested:int -> [ `Write of int | `Raise of Unix.error ]
(** Consulted before every individual write(2) attempt (after
    {!on_write} has sized the overall operation): [`Write k] = issue
    the syscall for the first [k] bytes of the remainder, [`Raise e] =
    the syscall fails with [e] having written nothing. Unarmed:
    [`Write requested]. *)

val on_event : string -> bool
(** [true] = skip the operation and {!Io.crash} instead. *)

val crash_lose_unsynced : unit -> bool
(** Whether the failpoint that just fired asked for unsynced data to be
    dropped. Valid between the trigger and {!Io.crash}. *)
