(** Checkpoint snapshots.

    A snapshot is the complete durable state at one LSN: the pager
    configuration, the {e physical} snapshot of every table (row ids,
    tombstones, page layout, index definitions), and the client-side
    WRE state of every encrypted table (keys, profiled distributions,
    range boundaries, PRNG stream position).

    Publication is atomic: the body is streamed to [snapshot.bin.tmp]
    through a bounded spill buffer (peak writer memory is ~256 KiB
    regardless of table size), fsynced, renamed over [snapshot.bin],
    and the directory is synced. A crash at any point leaves either
    the old snapshot or the new one — a leftover [.tmp] is ignored by
    {!load}. The file is [magic | body | u32 CRC-of-body] (the CRC is
    a footer so it can be computed while streaming); a {e published}
    snapshot that fails either check is a hard error
    ({!Corrupt_snapshot}), unlike a torn WAL tail, because the rename
    protocol never legitimately produces one. *)

type t = {
  last_lsn : int64;  (** every WAL record with LSN ≤ this is reflected *)
  pager : Sqldb.Pager.config;
  tables : Sqldb.Table.snapshot list;
  wre : Record.wre_config list;
}

exception Corrupt_snapshot of string

val path : dir:string -> string
(** [dir/snapshot.bin]. *)

val wal_path : dir:string -> string
(** [dir/wal.bin]. *)

val write : dir:string -> t -> unit
(** Atomic publish as described above. *)

val write_views :
  dir:string ->
  last_lsn:int64 ->
  pager:Sqldb.Pager.config ->
  views:Sqldb.Read_view.t list ->
  wre:Record.wre_config list ->
  unit
(** The checkpoint path: identical bytes to {!write} of the equivalent
    record ([Table.snapshot_of_view] per view), but streamed straight
    from the frozen views — the snapshot record is never materialized,
    so checkpointing a 10M-row table runs in bounded memory. *)

val load : dir:string -> t option
(** [None] when no snapshot has ever been published; raises
    {!Corrupt_snapshot} when one exists but does not verify. *)
