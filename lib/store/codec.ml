open Sqldb

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

type cursor = { s : string; mutable p : int }

let cursor s = { s; p = 0 }
let pos c = c.p
let remaining c = String.length c.s - c.p
let at_end c = c.p >= String.length c.s

let need c n = if c.p + n > String.length c.s then corrupt "truncated at byte %d (need %d)" c.p n

let skip c n =
  need c n;
  c.p <- c.p + n

(* Writers *)

let put_u8 b n = Buffer.add_char b (Char.chr (n land 0xFF))

let put_u32 b n =
  if n < 0 then corrupt "put_u32: negative";
  put_u8 b n;
  put_u8 b (n lsr 8);
  put_u8 b (n lsr 16);
  put_u8 b (n lsr 24)

let put_u64 b v =
  for i = 0 to 7 do
    put_u8 b (Int64.to_int (Int64.shift_right_logical v (8 * i)))
  done

let put_bool b v = put_u8 b (if v then 1 else 0)
let put_float b v = put_u64 b (Int64.bits_of_float v)

let put_str b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let put_value b v =
  match v with
  | Value.Null -> put_u8 b 0
  | Value.Int x ->
      put_u8 b 1;
      put_u64 b x
  | Value.Real x ->
      put_u8 b 2;
      put_float b x
  | Value.Text s ->
      put_u8 b 3;
      put_str b s
  | Value.Blob s ->
      put_u8 b 4;
      put_str b s

let put_row b row =
  put_u32 b (Array.length row);
  Array.iter (put_value b) row

let ty_code = function Value.TInt -> 0 | Value.TReal -> 1 | Value.TText -> 2 | Value.TBlob -> 3

let put_schema b schema =
  let cols = Schema.columns schema in
  put_u32 b (Array.length cols);
  Array.iter
    (fun (c : Schema.column) ->
      put_str b c.name;
      put_u8 b (ty_code c.ty);
      put_bool b c.nullable)
    cols

let index_kind_code = function Table_index.Btree -> 0 | Table_index.Hash -> 1

let put_table_snapshot b (s : Table.snapshot) =
  put_str b s.Table.s_name;
  put_schema b s.s_schema;
  let n = Array.length s.s_rows in
  put_u32 b n;
  for id = 0 to n - 1 do
    (* bit0 = row present (not vacuum-reclaimed), bit1 = live *)
    let flags =
      (match s.s_rows.(id) with Some _ -> 1 | None -> 0)
      lor (if s.s_live.(id) then 2 else 0)
    in
    put_u8 b flags;
    (match s.s_rows.(id) with Some row -> put_row b row | None -> ());
    put_u32 b s.s_row_pages.(id)
  done;
  put_u32 b s.s_cur_page;
  put_u32 b s.s_cur_fill;
  put_u64 b (Int64.of_int s.s_data_bytes);
  put_u32 b (List.length s.s_indexes);
  List.iter
    (fun (col, kind) ->
      put_str b col;
      put_u8 b (index_kind_code kind))
    s.s_indexes

(* Readers *)

let get_u8 c =
  need c 1;
  let v = Char.code c.s.[c.p] in
  c.p <- c.p + 1;
  v

let get_u32 c =
  let a = get_u8 c in
  let b = get_u8 c in
  let d = get_u8 c in
  let e = get_u8 c in
  a lor (b lsl 8) lor (d lsl 16) lor (e lsl 24)

let get_u64 c =
  need c 8;
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code c.s.[c.p + i]))
  done;
  c.p <- c.p + 8;
  !v

let get_bool c =
  match get_u8 c with 0 -> false | 1 -> true | n -> corrupt "bad bool %d" n

let get_float c = Int64.float_of_bits (get_u64 c)

let get_str c =
  let n = get_u32 c in
  need c n;
  let s = String.sub c.s c.p n in
  c.p <- c.p + n;
  s

let get_value c =
  match get_u8 c with
  | 0 -> Value.Null
  | 1 -> Value.Int (get_u64 c)
  | 2 -> Value.Real (get_float c)
  | 3 -> Value.Text (get_str c)
  | 4 -> Value.Blob (get_str c)
  | n -> corrupt "bad value tag %d" n

let get_row c =
  let n = get_u32 c in
  if n > String.length c.s - pos c then corrupt "row arity %d exceeds input" n;
  Array.init n (fun _ -> get_value c)

let ty_of_code = function
  | 0 -> Value.TInt
  | 1 -> Value.TReal
  | 2 -> Value.TText
  | 3 -> Value.TBlob
  | n -> corrupt "bad type code %d" n

let get_schema c =
  let n = get_u32 c in
  if n > String.length c.s - pos c then corrupt "schema arity %d exceeds input" n;
  let cols =
    List.init n (fun _ ->
        let name = get_str c in
        let ty = ty_of_code (get_u8 c) in
        let nullable = get_bool c in
        { Schema.name; ty; nullable })
  in
  Schema.create cols

let index_kind_of_code = function
  | 0 -> Table_index.Btree
  | 1 -> Table_index.Hash
  | n -> corrupt "bad index kind %d" n

let get_table_snapshot c =
  let s_name = get_str c in
  let s_schema = get_schema c in
  let n = get_u32 c in
  if n > String.length c.s - pos c then corrupt "row count %d exceeds input" n;
  let s_rows = Array.make n None in
  let s_live = Array.make n false in
  let s_row_pages = Array.make n 0 in
  for id = 0 to n - 1 do
    let flags = get_u8 c in
    if flags land 1 = 1 then s_rows.(id) <- Some (get_row c);
    s_live.(id) <- flags land 2 = 2;
    s_row_pages.(id) <- get_u32 c
  done;
  let s_cur_page = get_u32 c in
  let s_cur_fill = get_u32 c in
  let s_data_bytes = Int64.to_int (get_u64 c) in
  let n_idx = get_u32 c in
  if n_idx > String.length c.s - pos c then corrupt "index count %d exceeds input" n_idx;
  let s_indexes =
    List.init n_idx (fun _ ->
        let col = get_str c in
        let kind = index_kind_of_code (get_u8 c) in
        (col, kind))
  in
  {
    Table.s_name;
    s_schema;
    s_rows;
    s_live;
    s_row_pages;
    s_cur_page;
    s_cur_fill;
    s_data_bytes;
    s_indexes;
  }
