open Sqldb

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

type cursor = { s : string; mutable p : int }

let cursor s = { s; p = 0 }
let pos c = c.p
let remaining c = String.length c.s - c.p
let at_end c = c.p >= String.length c.s

let need c n = if c.p + n > String.length c.s then corrupt "truncated at byte %d (need %d)" c.p n

let skip c n =
  need c n;
  c.p <- c.p + n

(* Writers *)

let put_u8 b n = Buffer.add_char b (Char.chr (n land 0xFF))

let put_u32 b n =
  if n < 0 then corrupt "put_u32: negative";
  put_u8 b n;
  put_u8 b (n lsr 8);
  put_u8 b (n lsr 16);
  put_u8 b (n lsr 24)

let put_u64 b v =
  for i = 0 to 7 do
    put_u8 b (Int64.to_int (Int64.shift_right_logical v (8 * i)))
  done

let put_bool b v = put_u8 b (if v then 1 else 0)
let put_float b v = put_u64 b (Int64.bits_of_float v)

let put_str b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let put_value b v =
  match v with
  | Value.Null -> put_u8 b 0
  | Value.Int x ->
      put_u8 b 1;
      put_u64 b x
  | Value.Real x ->
      put_u8 b 2;
      put_float b x
  | Value.Text s ->
      put_u8 b 3;
      put_str b s
  | Value.Blob s ->
      put_u8 b 4;
      put_str b s

let put_row b row =
  put_u32 b (Array.length row);
  Array.iter (put_value b) row

let ty_code = function Value.TInt -> 0 | Value.TReal -> 1 | Value.TText -> 2 | Value.TBlob -> 3

let put_schema b schema =
  let cols = Schema.columns schema in
  put_u32 b (Array.length cols);
  Array.iter
    (fun (c : Schema.column) ->
      put_str b c.name;
      put_u8 b (ty_code c.ty);
      put_bool b c.nullable)
    cols

let index_kind_code = function Table_index.Btree -> 0 | Table_index.Hash -> 1

(* Little-endian fixed-width integers: dictionary ids and page numbers
   are stored at the narrowest width that fits their range (recorded
   elsewhere in the stream), which is what keeps a 10M-row checkpoint
   near the in-memory columnar size instead of 4-8 bytes per cell. *)
let put_fixed b width n =
  put_u8 b n;
  if width >= 2 then put_u8 b (n lsr 8);
  if width >= 4 then begin
    put_u8 b (n lsr 16);
    put_u8 b (n lsr 24)
  end

(* A table snapshot abstracted over its source, so checkpointing can
   stream straight from a frozen view — cell by cell, with [flush]
   giving the sink a chance to spill the buffer — without ever
   materializing the whole table as one record. *)
type table_writer = {
  w_name : string;
  w_schema : Schema.t;
  w_rows : int;
  w_cols : int;
  w_dict_len : int -> int;
  w_dict_entry : int -> int -> (Value.t * bool) option;
  w_dict_appends : int -> int;
  w_dict_intern_on : int -> bool;
  w_col_id : int -> int -> int;  (* col -> row id -> dictionary id (-1 = reclaimed) *)
  w_live : int -> bool;
  w_row_page : int -> int;
  w_row_size : int -> int;
  w_cur_page : int;
  w_cur_fill : int;
  w_data_bytes : int;
  w_live_bytes : int;
  w_rm_cur_page : int;
  w_rm_cur_fill : int;
  w_rm_data_bytes : int;
  w_indexes : (string * Table_index.kind) list;
}

let writer_of_snapshot (s : Table.snapshot) =
  {
    w_name = s.Table.s_name;
    w_schema = s.s_schema;
    w_rows = Array.length s.s_live;
    w_cols = Array.length s.s_cols;
    w_dict_len = (fun c -> Array.length s.s_cols.(c).Table.cs_entries);
    w_dict_entry = (fun c i -> s.s_cols.(c).Table.cs_entries.(i));
    w_dict_appends = (fun c -> s.s_cols.(c).Table.cs_appends);
    w_dict_intern_on = (fun c -> s.s_cols.(c).Table.cs_intern_on);
    w_col_id = (fun c id -> s.s_cols.(c).Table.cs_ids.(id));
    w_live = (fun id -> s.s_live.(id));
    w_row_page = (fun id -> s.s_row_pages.(id));
    w_row_size = (fun id -> s.s_row_sizes.(id));
    w_cur_page = s.s_cur_page;
    w_cur_fill = s.s_cur_fill;
    w_data_bytes = s.s_data_bytes;
    w_live_bytes = s.s_live_bytes;
    w_rm_cur_page = s.s_rm_cur_page;
    w_rm_cur_fill = s.s_rm_cur_fill;
    w_rm_data_bytes = s.s_rm_data_bytes;
    w_indexes = s.s_indexes;
  }

let writer_of_view v =
  {
    w_name = Read_view.name v;
    w_schema = Read_view.schema v;
    w_rows = Read_view.row_count v;
    w_cols = Read_view.n_cols v;
    w_dict_len = (fun c -> Column_dict.frozen_len (Read_view.dict v ~col:c));
    w_dict_entry = (fun c i -> Column_dict.frozen_entry (Read_view.dict v ~col:c) i);
    w_dict_appends = (fun c -> Column_dict.frozen_appends (Read_view.dict v ~col:c));
    w_dict_intern_on = (fun c -> Column_dict.frozen_intern_on (Read_view.dict v ~col:c));
    w_col_id = (fun c id -> Read_view.col_id v ~col:c id);
    w_live = Read_view.is_live v;
    w_row_page = Read_view.row_page v;
    w_row_size = Read_view.row_size v;
    w_cur_page = Read_view.cur_page v;
    w_cur_fill = Read_view.cur_fill v;
    w_data_bytes = Read_view.data_bytes v;
    w_live_bytes = Read_view.live_bytes v;
    w_rm_cur_page = Read_view.rm_cur_page v;
    w_rm_cur_fill = Read_view.rm_cur_fill v;
    w_rm_data_bytes = Read_view.rm_data_bytes v;
    w_indexes = List.map (fun (col, idx) -> (col, Table_index.kind idx)) (Read_view.indexes v);
  }

let put_table_writer ?(flush = fun () -> ()) b w =
  put_str b w.w_name;
  put_schema b w.w_schema;
  let n = w.w_rows in
  put_u32 b n;
  put_u32 b w.w_cols;
  for c = 0 to w.w_cols - 1 do
    let dict_len = w.w_dict_len c in
    put_u32 b dict_len;
    for i = 0 to dict_len - 1 do
      (* bit0 = entry present (not a vacuumed hole), bit1 = accounted *)
      (match w.w_dict_entry c i with
      | Some (v, accounted) ->
          put_u8 b (1 lor if accounted then 2 else 0);
          put_value b v
      | None -> put_u8 b 0);
      if i land 0xFF = 0xFF then flush ()
    done;
    put_u64 b (Int64.of_int (w.w_dict_appends c));
    put_bool b (w.w_dict_intern_on c);
    (* ids stored as id+1 (0 = reclaimed slot) at the narrowest width
       that fits the dictionary. *)
    let idw = Column_dict.width_for (dict_len + 1) in
    for id = 0 to n - 1 do
      put_fixed b idw (w.w_col_id c id + 1);
      if id land 0x1FFF = 0x1FFF then flush ()
    done;
    flush ()
  done;
  (* Visibility bitmap, packed. *)
  let byte = ref 0 in
  for id = 0 to n - 1 do
    if w.w_live id then byte := !byte lor (1 lsl (id land 7));
    if id land 7 = 7 then begin
      put_u8 b !byte;
      byte := 0
    end
  done;
  if n land 7 <> 0 then put_u8 b !byte;
  flush ();
  put_u32 b w.w_cur_page;
  put_u32 b w.w_cur_fill;
  let pw = Column_dict.width_for (w.w_cur_page + 1) in
  for id = 0 to n - 1 do
    put_fixed b pw (w.w_row_page id);
    if id land 0x1FFF = 0x1FFF then flush ()
  done;
  flush ();
  for id = 0 to n - 1 do
    put_u32 b (w.w_row_size id);
    if id land 0x1FFF = 0x1FFF then flush ()
  done;
  flush ();
  put_u64 b (Int64.of_int w.w_data_bytes);
  put_u64 b (Int64.of_int w.w_live_bytes);
  put_u32 b w.w_rm_cur_page;
  put_u32 b w.w_rm_cur_fill;
  put_u64 b (Int64.of_int w.w_rm_data_bytes);
  put_u32 b (List.length w.w_indexes);
  List.iter
    (fun (col, kind) ->
      put_str b col;
      put_u8 b (index_kind_code kind))
    w.w_indexes;
  flush ()

let put_table_snapshot b s = put_table_writer b (writer_of_snapshot s)

(* Readers *)

let get_u8 c =
  need c 1;
  let v = Char.code c.s.[c.p] in
  c.p <- c.p + 1;
  v

let get_u32 c =
  let a = get_u8 c in
  let b = get_u8 c in
  let d = get_u8 c in
  let e = get_u8 c in
  a lor (b lsl 8) lor (d lsl 16) lor (e lsl 24)

let get_u64 c =
  need c 8;
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code c.s.[c.p + i]))
  done;
  c.p <- c.p + 8;
  !v

let get_bool c =
  match get_u8 c with 0 -> false | 1 -> true | n -> corrupt "bad bool %d" n

let get_float c = Int64.float_of_bits (get_u64 c)

let get_str c =
  let n = get_u32 c in
  need c n;
  let s = String.sub c.s c.p n in
  c.p <- c.p + n;
  s

let get_value c =
  match get_u8 c with
  | 0 -> Value.Null
  | 1 -> Value.Int (get_u64 c)
  | 2 -> Value.Real (get_float c)
  | 3 -> Value.Text (get_str c)
  | 4 -> Value.Blob (get_str c)
  | n -> corrupt "bad value tag %d" n

let get_row c =
  let n = get_u32 c in
  if n > String.length c.s - pos c then corrupt "row arity %d exceeds input" n;
  Array.init n (fun _ -> get_value c)

let ty_of_code = function
  | 0 -> Value.TInt
  | 1 -> Value.TReal
  | 2 -> Value.TText
  | 3 -> Value.TBlob
  | n -> corrupt "bad type code %d" n

let get_schema c =
  let n = get_u32 c in
  if n > String.length c.s - pos c then corrupt "schema arity %d exceeds input" n;
  let cols =
    List.init n (fun _ ->
        let name = get_str c in
        let ty = ty_of_code (get_u8 c) in
        let nullable = get_bool c in
        { Schema.name; ty; nullable })
  in
  Schema.create cols

let index_kind_of_code = function
  | 0 -> Table_index.Btree
  | 1 -> Table_index.Hash
  | n -> corrupt "bad index kind %d" n

let get_fixed c width =
  let a = get_u8 c in
  if width = 1 then a
  else
    let b = get_u8 c in
    if width = 2 then a lor (b lsl 8)
    else
      let d = get_u8 c in
      let e = get_u8 c in
      a lor (b lsl 8) lor (d lsl 16) lor (e lsl 24)

let get_table_snapshot c =
  let s_name = get_str c in
  let s_schema = get_schema c in
  let n = get_u32 c in
  if n > remaining c then corrupt "row count %d exceeds input" n;
  let n_cols = get_u32 c in
  if n_cols > remaining c then corrupt "column count %d exceeds input" n_cols;
  let s_cols =
    Array.init n_cols (fun _ ->
        let dict_len = get_u32 c in
        if dict_len > remaining c then corrupt "dictionary size %d exceeds input" dict_len;
        let cs_entries =
          Array.init dict_len (fun _ ->
              let flags = get_u8 c in
              if flags land 1 = 1 then Some (get_value c, flags land 2 = 2) else None)
        in
        let cs_appends = Int64.to_int (get_u64 c) in
        let cs_intern_on = get_bool c in
        let idw = Column_dict.width_for (dict_len + 1) in
        let cs_ids =
          Array.init n (fun _ ->
              let v = get_fixed c idw - 1 in
              if v >= dict_len then corrupt "dictionary id %d out of range %d" v dict_len;
              v)
        in
        { Table.cs_entries; cs_appends; cs_intern_on; cs_ids })
  in
  let nbytes = (n + 7) / 8 in
  need c nbytes;
  let s_live = Array.init n (fun id -> Char.code c.s.[c.p + (id / 8)] land (1 lsl (id land 7)) <> 0) in
  c.p <- c.p + nbytes;
  let s_cur_page = get_u32 c in
  let s_cur_fill = get_u32 c in
  let pw = Column_dict.width_for (s_cur_page + 1) in
  let s_row_pages = Array.init n (fun _ -> get_fixed c pw) in
  let s_row_sizes = Array.init n (fun _ -> get_u32 c) in
  let s_data_bytes = Int64.to_int (get_u64 c) in
  let s_live_bytes = Int64.to_int (get_u64 c) in
  let s_rm_cur_page = get_u32 c in
  let s_rm_cur_fill = get_u32 c in
  let s_rm_data_bytes = Int64.to_int (get_u64 c) in
  let n_idx = get_u32 c in
  if n_idx > remaining c then corrupt "index count %d exceeds input" n_idx;
  let s_indexes =
    List.init n_idx (fun _ ->
        let col = get_str c in
        let kind = index_kind_of_code (get_u8 c) in
        (col, kind))
  in
  {
    Table.s_name;
    s_schema;
    s_cols;
    s_live;
    s_row_pages;
    s_row_sizes;
    s_cur_page;
    s_cur_fill;
    s_data_bytes;
    s_live_bytes;
    s_rm_cur_page;
    s_rm_cur_fill;
    s_rm_data_bytes;
    s_indexes;
  }
