(** Binary (de)serialization for WAL payloads and snapshots.

    Little-endian, length-prefixed, no alignment. Writers append to a
    [Buffer.t]; readers advance a {!cursor} and raise {!Corrupt} on any
    malformed input — truncation, bad tags, out-of-range lengths — so
    callers can treat "doesn't decode" and "failed checksum" the same
    way. *)

exception Corrupt of string

type cursor

val cursor : string -> cursor
val pos : cursor -> int

val remaining : cursor -> int
(** Bytes left to read — lets decoders bound element counts by the
    payload actually present before allocating. *)

val at_end : cursor -> bool
val skip : cursor -> int -> unit

val put_u8 : Buffer.t -> int -> unit
val put_u32 : Buffer.t -> int -> unit
val put_u64 : Buffer.t -> int64 -> unit
val put_bool : Buffer.t -> bool -> unit
val put_float : Buffer.t -> float -> unit
val put_str : Buffer.t -> string -> unit
val put_value : Buffer.t -> Sqldb.Value.t -> unit
val put_row : Buffer.t -> Sqldb.Value.t array -> unit
val put_schema : Buffer.t -> Sqldb.Schema.t -> unit

type table_writer
(** A table snapshot abstracted over its source — a materialized
    {!Sqldb.Table.snapshot} record or a live frozen view — so the
    checkpoint path can stream cell by cell instead of building the
    whole record in memory. *)

val writer_of_snapshot : Sqldb.Table.snapshot -> table_writer
val writer_of_view : Sqldb.Read_view.t -> table_writer

val put_table_writer : ?flush:(unit -> unit) -> Buffer.t -> table_writer -> unit
(** Serialize; [flush] is called at least once per few thousand cells
    (and at every section boundary) so the caller can spill the buffer
    to disk. Dictionary ids and page numbers are written at the
    narrowest fixed width that fits their range. *)

val put_table_snapshot : Buffer.t -> Sqldb.Table.snapshot -> unit
(** [put_table_writer] over [writer_of_snapshot], no flushing. *)

val get_u8 : cursor -> int
val get_u32 : cursor -> int
val get_u64 : cursor -> int64
val get_bool : cursor -> bool
val get_float : cursor -> float
val get_str : cursor -> string
val get_value : cursor -> Sqldb.Value.t
val get_row : cursor -> Sqldb.Value.t array
val get_schema : cursor -> Sqldb.Schema.t
val get_table_snapshot : cursor -> Sqldb.Table.snapshot
