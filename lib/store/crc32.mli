(** CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the
    checksum guarding every WAL frame and the snapshot body. Detects
    torn writes and bit rot; it is {e not} an integrity MAC (the store
    directory is trusted client-side state; see DESIGN.md §5e). *)

val digest : string -> int32
(** CRC of a whole string. *)

val update : int32 -> string -> int32
(** Fold more bytes into a running CRC ([digest s = update (digest "") s]
    — incremental form for checksumming a header and payload without
    concatenating them). *)
