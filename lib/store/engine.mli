(** The durable storage engine: WAL + checkpoints + recovery.

    An engine owns a directory holding two files — [wal.bin] (see
    {!Wal}) and [snapshot.bin] (see {!Snapshot}) — and a live
    {!Sqldb.Database.t} wired to them through {!Sqldb.Journal}: every
    mutation that applies in memory is appended to the WAL as a
    {!Record.op} before control returns to the caller, and fsynced
    according to the group-commit setting.

    {!open_dir} recovers: load the latest snapshot if any, replay the
    WAL records past it (torn tail ignored and trimmed), and resume.
    The recovery contract, enforced by the fault-injection tests:
    whatever prefix of acknowledged operations survived the crash is
    reproduced {e exactly} — table contents, row ids, page layout,
    index entries, and the weak-randomness stream, so tags generated
    after reopening are byte-identical to a process that never died.

    The directory is trusted client-side proxy state: it contains the
    exported master key and profiled distributions. The adversary of
    the paper's model sees the encrypted table contents, not this
    directory (DESIGN.md §5e). *)

type t

type recovery = {
  snapshot_loaded : bool;
  replayed : int;  (** WAL records applied past the snapshot *)
  duration_ns : float;
}

val open_dir :
  ?pager_config:Sqldb.Pager.config ->
  ?group_commit:int ->
  ?checkpoint_every:int ->
  dir:string ->
  unit ->
  t
(** Open (creating the directory and empty log on first use) and
    recover. [group_commit] (default 1) = appends per fsync;
    [checkpoint_every n] checkpoints automatically after every [n]
    logged operations (default: manual checkpoints only).
    [pager_config] applies only to a fresh store — an existing
    snapshot's configuration wins. *)

val db : t -> Sqldb.Database.t
val dir : t -> string
val recovery : t -> recovery

val create_encrypted :
  ?fallback:Wre.Column_enc.fallback ->
  ?tag_algo:Crypto.Prf.algo ->
  ?tag_index:Sqldb.Table_index.kind ->
  ?range_columns:(string * int) list ->
  ?range_training:(string -> int64 array) ->
  t ->
  name:string ->
  plain_schema:Sqldb.Schema.t ->
  key_column:string ->
  encrypted_columns:string list ->
  kind:Wre.Scheme.kind ->
  master:Crypto.Keys.master ->
  dist_of:(string -> Dist.Empirical.t) ->
  seed:int64 ->
  unit ->
  Wre.Encrypted_db.t
(** {!Wre.Encrypted_db.create} against this engine's database, plus an
    [Attach_wre] WAL record capturing the client-side state (exported
    keys, distribution counts, range boundaries, PRNG seed state) so
    recovery can re-attach without the plaintext profile. *)

val encrypted : t -> string -> Wre.Encrypted_db.t option
(** By table name. *)

val encrypted_names : t -> string list

val flush : t -> unit
(** Commit barrier: fsync any WAL records still riding the
    group-commit window. *)

val checkpoint : t -> unit
(** Flush, atomically publish a snapshot of everything, then truncate
    the WAL. Bounds both log growth and recovery time. The snapshot is
    serialized from frozen epoch views ({!Sqldb.Table.freeze}): each
    table's writer lock is held only long enough to freeze, so
    concurrent readers — and readers still holding {e older} epochs —
    are never paused while the snapshot file is written. *)

val close : t -> unit
(** Flush and release file descriptors. The engine (and its database)
    must not be used afterwards. *)
