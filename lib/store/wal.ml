let m_appends = Obs.Metrics.counter "store.wal_appends_total"
let m_fsyncs = Obs.Metrics.counter "store.wal_fsyncs_total"

type t = {
  file : Io.file;
  group_commit : int;
  mutable next_lsn : int64;
  mutable pending : int;  (* appends since the last fsync *)
}

let create ~path ~group_commit ~next_lsn =
  if group_commit < 1 then invalid_arg "Wal.create: group_commit must be >= 1";
  { file = Io.open_append path; group_commit; next_lsn; pending = 0 }

let lsn_bytes lsn =
  let b = Buffer.create 8 in
  Codec.put_u64 b lsn;
  Buffer.contents b

let frame lsn payload =
  let b = Buffer.create (16 + String.length payload) in
  Codec.put_u32 b (String.length payload);
  Codec.put_u64 b lsn;
  let crc = Crc32.update (Crc32.digest (lsn_bytes lsn)) payload in
  Codec.put_u32 b (Int32.to_int crc land 0xFFFFFFFF);
  Buffer.contents b ^ payload

let sync t =
  if t.pending > 0 then begin
    Io.fsync ~point:"wal.fsync" t.file;
    Obs.Metrics.incr m_fsyncs;
    t.pending <- 0
  end

let append t payload =
  let lsn = t.next_lsn in
  t.next_lsn <- Int64.add lsn 1L;
  Io.write ~point:"wal.write" t.file (frame lsn payload);
  Obs.Metrics.incr m_appends;
  t.pending <- t.pending + 1;
  if t.pending >= t.group_commit then sync t;
  lsn

let reset t =
  Io.truncate t.file 0;
  Io.fsync ~point:"wal.fsync" t.file;
  t.pending <- 0

let truncate_to t n =
  Io.truncate t.file n;
  Io.fsync ~point:"wal.fsync" t.file;
  t.pending <- 0

let next_lsn t = t.next_lsn
let size t = Io.size t.file
let close t = Io.close t.file

let replay ~path f =
  match Io.read_file path with
  | None -> (0L, 0)
  | Some data ->
      let len = String.length data in
      let c = Codec.cursor data in
      let max_lsn = ref 0L in
      let valid = ref 0 in
      (try
         while Codec.pos c + 16 <= len do
           let plen = Codec.get_u32 c in
           let lsn = Codec.get_u64 c in
           let crc = Int32.of_int (Codec.get_u32 c) in
           if plen > len - Codec.pos c then raise Exit;
           let payload = String.sub data (Codec.pos c) plen in
           if Crc32.update (Crc32.digest (lsn_bytes lsn)) payload <> crc then raise Exit;
           Codec.skip c plen;
           f lsn payload;
           max_lsn := lsn;
           valid := Codec.pos c
         done
       with Exit | Codec.Corrupt _ -> ());
      (!max_lsn, !valid)
