type wre_config = {
  table_name : string;
  kind : Wre.Scheme.kind;
  fallback : Wre.Column_enc.fallback;
  tag_algo : Crypto.Prf.algo;
  tag_index : Sqldb.Table_index.kind;
  k0 : string;
  k1 : string;
  plain_schema : Sqldb.Schema.t;
  key_column : string;
  encrypted_columns : string list;
  dists : (string * (string * int) list) list;
  ranges : (string * int64 array) list;
  prng : string;
}

type op =
  | Create_table of { name : string; schema : Sqldb.Schema.t }
  | Create_index of { table : string; column : string; kind : Sqldb.Table_index.kind }
  | Insert of { table : string; row : Sqldb.Value.t array; prng : string option }
  | Insert_batch of { table : string; rows : Sqldb.Value.t array array; prng : string option }
  | Delete of { table : string; id : int }
  | Vacuum of { table : string }
  | Attach_wre of wre_config

open Codec

let put_prng_opt b = function
  | None -> put_bool b false
  | Some s ->
      put_bool b true;
      put_str b s

let get_prng_opt c = if get_bool c then Some (get_str c) else None

let put_list b put xs =
  put_u32 b (List.length xs);
  List.iter (put b) xs

let get_list c get =
  let n = get_u32 c in
  List.init n (fun _ -> get c)

let fallback_code = function `Reject -> 0 | `Min_frequency -> 1

let fallback_of_code = function
  | 0 -> `Reject
  | 1 -> `Min_frequency
  | n -> raise (Corrupt (Printf.sprintf "bad fallback code %d" n))

let algo_code = function Crypto.Prf.Hmac_sha256 -> 0 | Crypto.Prf.Siphash24 -> 1

let algo_of_code = function
  | 0 -> Crypto.Prf.Hmac_sha256
  | 1 -> Crypto.Prf.Siphash24
  | n -> raise (Corrupt (Printf.sprintf "bad PRF algo code %d" n))

let index_kind_code = function Sqldb.Table_index.Btree -> 0 | Sqldb.Table_index.Hash -> 1

let index_kind_of_code = function
  | 0 -> Sqldb.Table_index.Btree
  | 1 -> Sqldb.Table_index.Hash
  | n -> raise (Corrupt (Printf.sprintf "bad index kind %d" n))

let put_wre_config b cfg =
  put_str b cfg.table_name;
  put_str b (Wre.Scheme.to_string cfg.kind);
  put_u8 b (fallback_code cfg.fallback);
  put_u8 b (algo_code cfg.tag_algo);
  put_u8 b (index_kind_code cfg.tag_index);
  put_str b cfg.k0;
  put_str b cfg.k1;
  put_schema b cfg.plain_schema;
  put_str b cfg.key_column;
  put_list b put_str cfg.encrypted_columns;
  put_list b
    (fun b (col, counts) ->
      put_str b col;
      put_list b
        (fun b (m, n) ->
          put_str b m;
          put_u32 b n)
        counts)
    cfg.dists;
  put_list b
    (fun b (col, boundaries) ->
      put_str b col;
      put_u32 b (Array.length boundaries);
      Array.iter (put_u64 b) boundaries)
    cfg.ranges;
  put_str b cfg.prng

let get_wre_config c =
  let table_name = get_str c in
  let kind =
    match Wre.Scheme.of_string (get_str c) with
    | Ok k -> k
    | Error e -> raise (Corrupt ("bad scheme kind: " ^ e))
  in
  let fallback = fallback_of_code (get_u8 c) in
  let tag_algo = algo_of_code (get_u8 c) in
  let tag_index = index_kind_of_code (get_u8 c) in
  let k0 = get_str c in
  let k1 = get_str c in
  let plain_schema = get_schema c in
  let key_column = get_str c in
  let encrypted_columns = get_list c get_str in
  let dists =
    get_list c (fun c ->
        let col = get_str c in
        let counts =
          get_list c (fun c ->
              let m = get_str c in
              let n = get_u32 c in
              (m, n))
        in
        (col, counts))
  in
  let ranges =
    get_list c (fun c ->
        let col = get_str c in
        let n = get_u32 c in
        let boundaries = Array.init n (fun _ -> get_u64 c) in
        (col, boundaries))
  in
  let prng = get_str c in
  {
    table_name;
    kind;
    fallback;
    tag_algo;
    tag_index;
    k0;
    k1;
    plain_schema;
    key_column;
    encrypted_columns;
    dists;
    ranges;
    prng;
  }

let encode op =
  let b = Buffer.create 128 in
  (match op with
  | Create_table { name; schema } ->
      put_u8 b 1;
      put_str b name;
      put_schema b schema
  | Create_index { table; column; kind } ->
      put_u8 b 2;
      put_str b table;
      put_str b column;
      put_u8 b (index_kind_code kind)
  | Insert { table; row; prng } ->
      put_u8 b 3;
      put_str b table;
      put_row b row;
      put_prng_opt b prng
  | Insert_batch { table; rows; prng } ->
      put_u8 b 4;
      put_str b table;
      put_u32 b (Array.length rows);
      Array.iter (put_row b) rows;
      put_prng_opt b prng
  | Delete { table; id } ->
      put_u8 b 5;
      put_str b table;
      put_u32 b id
  | Vacuum { table } ->
      put_u8 b 6;
      put_str b table
  | Attach_wre cfg ->
      put_u8 b 7;
      put_wre_config b cfg);
  Buffer.contents b

let decode s =
  let c = cursor s in
  let op =
    match get_u8 c with
    | 1 ->
        let name = get_str c in
        let schema = get_schema c in
        Create_table { name; schema }
    | 2 ->
        let table = get_str c in
        let column = get_str c in
        let kind = index_kind_of_code (get_u8 c) in
        Create_index { table; column; kind }
    | 3 ->
        let table = get_str c in
        let row = get_row c in
        let prng = get_prng_opt c in
        Insert { table; row; prng }
    | 4 ->
        let table = get_str c in
        let n = get_u32 c in
        if n > String.length s then raise (Corrupt "batch size exceeds input");
        let rows = Array.init n (fun _ -> get_row c) in
        let prng = get_prng_opt c in
        Insert_batch { table; rows; prng }
    | 5 ->
        let table = get_str c in
        let id = get_u32 c in
        Delete { table; id }
    | 6 -> Vacuum { table = get_str c }
    | 7 -> Attach_wre (get_wre_config c)
    | n -> raise (Corrupt (Printf.sprintf "bad op tag %d" n))
  in
  if not (at_end c) then raise (Corrupt "trailing bytes after op");
  op
