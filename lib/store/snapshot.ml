type t = {
  last_lsn : int64;
  pager : Sqldb.Pager.config;
  tables : Sqldb.Table.snapshot list;
  wre : Record.wre_config list;
}

exception Corrupt_snapshot of string

let magic = "WRESNAP1"

let path ~dir = Filename.concat dir "snapshot.bin"
let wal_path ~dir = Filename.concat dir "wal.bin"

let encode_body t =
  let b = Buffer.create 4096 in
  Codec.put_u64 b t.last_lsn;
  let (p : Sqldb.Pager.config) = t.pager in
  Codec.put_u32 b p.page_size;
  Codec.put_float b p.io_miss_ns;
  Codec.put_float b p.cpu_row_ns;
  Codec.put_float b p.cpu_probe_ns;
  Codec.put_float b p.cpu_transfer_ns_per_byte;
  Codec.put_u32 b (List.length t.tables);
  List.iter (Codec.put_table_snapshot b) t.tables;
  Codec.put_u32 b (List.length t.wre);
  List.iter (Record.put_wre_config b) t.wre;
  Buffer.contents b

let decode_body body =
  let c = Codec.cursor body in
  let last_lsn = Codec.get_u64 c in
  let page_size = Codec.get_u32 c in
  let io_miss_ns = Codec.get_float c in
  let cpu_row_ns = Codec.get_float c in
  let cpu_probe_ns = Codec.get_float c in
  let cpu_transfer_ns_per_byte = Codec.get_float c in
  let pager =
    { Sqldb.Pager.page_size; io_miss_ns; cpu_row_ns; cpu_probe_ns; cpu_transfer_ns_per_byte }
  in
  let n_tables = Codec.get_u32 c in
  let tables = List.init n_tables (fun _ -> Codec.get_table_snapshot c) in
  let n_wre = Codec.get_u32 c in
  let wre = List.init n_wre (fun _ -> Record.get_wre_config c) in
  if not (Codec.at_end c) then raise (Codec.Corrupt "trailing bytes after snapshot");
  { last_lsn; pager; tables; wre }

let write ~dir t =
  let body = encode_body t in
  let b = Buffer.create (String.length body + 16) in
  Buffer.add_string b magic;
  Codec.put_u32 b (Int32.to_int (Crc32.digest body) land 0xFFFFFFFF);
  Buffer.add_string b body;
  let dst = path ~dir in
  let tmp = dst ^ ".tmp" in
  let f = Io.open_trunc tmp in
  Io.write ~point:"snapshot.write" f (Buffer.contents b);
  Io.fsync ~point:"snapshot.fsync" f;
  Io.close f;
  Io.rename ~point:"snapshot.rename" tmp dst;
  Io.fsync_dir ~point:"dir.fsync" dir

let load ~dir =
  match Io.read_file (path ~dir) with
  | None -> None
  | Some data -> (
      if String.length data < 12 || String.sub data 0 8 <> magic then
        raise (Corrupt_snapshot "bad magic");
      let c = Codec.cursor data in
      Codec.skip c 8;
      let crc = Int32.of_int (Codec.get_u32 c) in
      let body = String.sub data 12 (String.length data - 12) in
      if Crc32.digest body <> crc then raise (Corrupt_snapshot "checksum mismatch");
      try Some (decode_body body) with Codec.Corrupt e -> raise (Corrupt_snapshot e))
