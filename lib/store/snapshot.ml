type t = {
  last_lsn : int64;
  pager : Sqldb.Pager.config;
  tables : Sqldb.Table.snapshot list;
  wre : Record.wre_config list;
}

exception Corrupt_snapshot of string

(* Format 2: streamed body. WRESNAP1 put a whole-body CRC in the
   header, which forced the writer to materialize the entire body in
   memory before the first byte hit disk — at 10M rows that is the
   whole database twice over. V2 writes [magic | body | u32 crc]: the
   CRC is computed incrementally while the body streams out through a
   bounded buffer and lands in a footer. The atomic tmp-rename publish
   is unchanged, so a torn write still leaves the old snapshot. *)
let magic = "WRESNAP2"

let path ~dir = Filename.concat dir "snapshot.bin"
let wal_path ~dir = Filename.concat dir "wal.bin"

(* Bounded spill buffer: the serializers' [flush] hooks drain it to the
   file once it crosses the threshold, folding the bytes into the
   running CRC on the way out. *)
type sink = { file : Io.file; buf : Buffer.t; mutable crc : int32 }

let flush_threshold = 256 * 1024

let sink_drain s =
  if Buffer.length s.buf > 0 then begin
    let chunk = Buffer.contents s.buf in
    Buffer.clear s.buf;
    s.crc <- Crc32.update s.crc chunk;
    Io.write ~point:"snapshot.write" s.file chunk
  end

let sink_flush s = if Buffer.length s.buf >= flush_threshold then sink_drain s

let write_stream ~dir ~last_lsn ~(pager : Sqldb.Pager.config) ~table_writers ~wre =
  let dst = path ~dir in
  let tmp = dst ^ ".tmp" in
  let f = Io.open_trunc tmp in
  Io.write ~point:"snapshot.write" f magic;
  let s = { file = f; buf = Buffer.create (flush_threshold + 4096); crc = Crc32.digest "" } in
  Codec.put_u64 s.buf last_lsn;
  Codec.put_u32 s.buf pager.page_size;
  Codec.put_float s.buf pager.io_miss_ns;
  Codec.put_float s.buf pager.cpu_row_ns;
  Codec.put_float s.buf pager.cpu_probe_ns;
  Codec.put_float s.buf pager.cpu_transfer_ns_per_byte;
  Codec.put_u32 s.buf (List.length table_writers);
  List.iter (fun w -> Codec.put_table_writer ~flush:(fun () -> sink_flush s) s.buf w) table_writers;
  Codec.put_u32 s.buf (List.length wre);
  List.iter (Record.put_wre_config s.buf) wre;
  sink_drain s;
  let footer = Buffer.create 4 in
  Codec.put_u32 footer (Int32.to_int s.crc land 0xFFFFFFFF);
  Io.write ~point:"snapshot.write" f (Buffer.contents footer);
  Io.fsync ~point:"snapshot.fsync" f;
  Io.close f;
  Io.rename ~point:"snapshot.rename" tmp dst;
  Io.fsync_dir ~point:"dir.fsync" dir

let write ~dir t =
  write_stream ~dir ~last_lsn:t.last_lsn ~pager:t.pager
    ~table_writers:(List.map Codec.writer_of_snapshot t.tables)
    ~wre:t.wre

(* The checkpoint path: stream straight from frozen views, so the
   snapshot record (rows × columns of boxed values) is never
   materialized — peak memory is the spill buffer. *)
let write_views ~dir ~last_lsn ~pager ~views ~wre =
  write_stream ~dir ~last_lsn ~pager ~table_writers:(List.map Codec.writer_of_view views) ~wre

let decode_body body =
  let c = Codec.cursor body in
  let last_lsn = Codec.get_u64 c in
  let page_size = Codec.get_u32 c in
  let io_miss_ns = Codec.get_float c in
  let cpu_row_ns = Codec.get_float c in
  let cpu_probe_ns = Codec.get_float c in
  let cpu_transfer_ns_per_byte = Codec.get_float c in
  let pager =
    { Sqldb.Pager.page_size; io_miss_ns; cpu_row_ns; cpu_probe_ns; cpu_transfer_ns_per_byte }
  in
  let n_tables = Codec.get_u32 c in
  let tables = List.init n_tables (fun _ -> Codec.get_table_snapshot c) in
  let n_wre = Codec.get_u32 c in
  let wre = List.init n_wre (fun _ -> Record.get_wre_config c) in
  if not (Codec.at_end c) then raise (Codec.Corrupt "trailing bytes after snapshot");
  { last_lsn; pager; tables; wre }

let load ~dir =
  match Io.read_file (path ~dir) with
  | None -> None
  | Some data -> (
      if String.length data < 12 || String.sub data 0 8 <> magic then
        raise (Corrupt_snapshot "bad magic");
      let body = String.sub data 8 (String.length data - 12) in
      let c = Codec.cursor (String.sub data (String.length data - 4) 4) in
      let crc = Int32.of_int (Codec.get_u32 c) in
      if Crc32.digest body <> crc then raise (Corrupt_snapshot "checksum mismatch");
      try Some (decode_body body) with Codec.Corrupt e -> raise (Corrupt_snapshot e))
