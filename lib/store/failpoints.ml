exception Crash of string

type mode =
  | Off
  | Cut of { mutable budget : int; lose : bool }
  | At_event of { point : string; mutable left : int; lose : bool }
  | Counting

let mode = ref Off
let bytes_seen = ref 0
let events_seen : (string, int) Hashtbl.t = Hashtbl.create 8
let lose_flag = ref false

let disarm () = mode := Off

let arm_cut_bytes ?(lose_unsynced = false) n =
  if n < 0 then invalid_arg "Failpoints.arm_cut_bytes: negative budget";
  mode := Cut { budget = n; lose = lose_unsynced }

let arm_at_event ?(lose_unsynced = false) point ~n =
  if n < 1 then invalid_arg "Failpoints.arm_at_event: n is 1-based";
  mode := At_event { point; left = n; lose = lose_unsynced }

let arm_counting () =
  bytes_seen := 0;
  Hashtbl.reset events_seen;
  mode := Counting

let counted_bytes () = !bytes_seen

let counted_events () =
  Hashtbl.fold (fun p n acc -> (p, n) :: acc) events_seen []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let armed () = !mode <> Off

(* Firing is one-shot: record the lose-unsynced request and disarm so
   the recovery that follows the crash runs unimpeded. *)
let trigger lose =
  lose_flag := lose;
  mode := Off

let on_write n =
  match !mode with
  | Off | At_event _ -> `All
  | Counting ->
      bytes_seen := !bytes_seen + n;
      `All
  | Cut c ->
      if c.budget >= n then begin
        c.budget <- c.budget - n;
        `All
      end
      else begin
        let k = c.budget in
        trigger c.lose;
        `Partial k
      end

let on_event point =
  match !mode with
  | Off | Cut _ -> false
  | Counting ->
      Hashtbl.replace events_seen point (1 + Option.value ~default:0 (Hashtbl.find_opt events_seen point));
      false
  | At_event e ->
      if e.point <> point then false
      else begin
        e.left <- e.left - 1;
        if e.left > 0 then false
        else begin
          trigger e.lose;
          true
        end
      end

let crash_lose_unsynced () = !lose_flag
