exception Crash of string

type mode =
  | Off
  | Cut of { mutable budget : int; lose : bool }
  | At_event of { point : string; mutable left : int; lose : bool }
  | Counting

let mode = ref Off
let bytes_seen = ref 0
let events_seen : (string, int) Hashtbl.t = Hashtbl.create 8
let lose_flag = ref false

(* Scripted per-syscall outcomes for the descriptor-level write loop:
   each write(2) attempt consumes the next entry. Orthogonal to [mode]
   so a cut/event failpoint can be armed at the same time. *)
type syscall_outcome = [ `Short of int | `Errno of Unix.error ]

let syscalls : syscall_outcome list ref = ref []

let arm_syscalls outcomes =
  List.iter
    (function
      | `Short k when k < 0 -> invalid_arg "Failpoints.arm_syscalls: negative short write"
      | _ -> ())
    outcomes;
  syscalls := outcomes

let on_syscall ~requested =
  match !syscalls with
  | [] -> `Write requested
  | o :: rest ->
      syscalls := rest;
      (match o with `Short k -> `Write (min k requested) | `Errno e -> `Raise e)

let disarm () =
  mode := Off;
  syscalls := []

let arm_cut_bytes ?(lose_unsynced = false) n =
  if n < 0 then invalid_arg "Failpoints.arm_cut_bytes: negative budget";
  mode := Cut { budget = n; lose = lose_unsynced }

let arm_at_event ?(lose_unsynced = false) point ~n =
  if n < 1 then invalid_arg "Failpoints.arm_at_event: n is 1-based";
  mode := At_event { point; left = n; lose = lose_unsynced }

let arm_counting () =
  bytes_seen := 0;
  Hashtbl.reset events_seen;
  mode := Counting

let counted_bytes () = !bytes_seen

let counted_events () =
  Hashtbl.fold (fun p n acc -> (p, n) :: acc) events_seen []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let armed () = !mode <> Off || !syscalls <> []

(* Firing is one-shot: record the lose-unsynced request and disarm so
   the recovery that follows the crash runs unimpeded. *)
let trigger lose =
  lose_flag := lose;
  mode := Off

let on_write n =
  match !mode with
  | Off | At_event _ -> `All
  | Counting ->
      bytes_seen := !bytes_seen + n;
      `All
  | Cut c ->
      if c.budget >= n then begin
        c.budget <- c.budget - n;
        `All
      end
      else begin
        let k = c.budget in
        trigger c.lose;
        `Partial k
      end

let on_event point =
  match !mode with
  | Off | Cut _ -> false
  | Counting ->
      Hashtbl.replace events_seen point (1 + Option.value ~default:0 (Hashtbl.find_opt events_seen point));
      false
  | At_event e ->
      if e.point <> point then false
      else begin
        e.left <- e.left - 1;
        if e.left > 0 then false
        else begin
          trigger e.lose;
          true
        end
      end

let crash_lose_unsynced () = !lose_flag
