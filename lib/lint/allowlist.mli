(** Deliberate-exception list for lint findings.

    One entry per line, [RULE path[:line]], with [#] comments:
    {v
    # pager recovery path deliberately swallows torn-page errors
    R5 lib/sqldb/pager.ml:42
    R3 bench/exp_micro.ml
    v}
    An entry without a line number suppresses the rule for the whole
    file. Entry paths are repo-relative and match by path suffix, so
    absolute and [./]-relative diagnostic paths behave identically.
    Unused entries are reported by the driver (a hard error under
    [--ci]) so the list cannot rot silently. *)

type entry = { rule : Rule.t; path : string; line : int option; source : string }
type t = entry list

val empty : t
val of_string : ?source:string -> string -> (t, string) result
val load : string -> (t, string) result
val suppresses : t -> Diagnostic.t -> bool
val unused : t -> Diagnostic.t list -> entry list
val describe_entry : entry -> string
