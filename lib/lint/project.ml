(* Phase 2 of the project-level analyzer, plus the two rules that only
   make sense with (R8) or next to (R9) project context.

   [lint_units] is the whole pipeline: parse every unit, build the
   {!Summary} table to a cross-module fixpoint (phase 1), then re-walk
   each unit running every enabled rule (phase 2) — the per-file R1–R6
   core from {!Engine}, R7 from {!Taint} resolved against the summary
   table, and R8/R9 below. Each rule is timed and counted separately;
   the stats feed the driver's [--stats] table and the CI step summary. *)

open Parsetree

module SS = Set.Make (String)

type unit_src = { u_path : string; u_source : string }

type rule_stat = { sr_rule : Rule.t; hits : int; wall_ns : float }

type result = {
  diagnostics : Diagnostic.t list;
  errors : string list;
  stats : rule_stat list;
  n_units : int;
  summary_ns : float;  (** phase-1 wall time (parse + summary fixpoint) *)
}

let dir_scope = Taint.dir_scope

(* ---------------- R8: domain-safety discipline ---------------- *)

(* The fan-out surface: modules the parallel read path executes on
   worker domains (PR 5's executor/proxy/encrypted_db pipeline lives in
   these three libraries, and PR 7's batched-admission server fans
   session state over the same pool). Module-level mutable state here
   must be Atomic, Domain.DLS, or behind an annotated mutex. *)
let r8_dir_scope path =
  dir_scope [ "lib"; "sqldb" ] path || dir_scope [ "lib"; "core" ] path
  || dir_scope [ "lib"; "obs" ] path
  || dir_scope [ "lib"; "server" ] path

let type_path_is (t : core_type) want =
  match t.ptyp_desc with
  | Ptyp_constr ({ txt; _ }, _) -> (
      match List.rev (Longident.flatten txt) with
      | b :: a :: _ -> [ a; b ] = want
      | [ only ] -> [ only ] = want
      | [] -> false)
  | _ -> false

let is_atomic_type t = type_path_is t [ "Atomic"; "t" ]
let is_hashtbl_type t = type_path_is t [ "Hashtbl"; "t" ]

let check_r8 ~path ~guard ~reachable structure =
  if not (r8_dir_scope path) then []
  else if not reachable then []
  else
    match guard with
    | Some _ -> [] (* module-annotated: state is behind the named mutex *)
    | None ->
        let diags = ref [] in
        let report loc msg =
          diags := Diagnostic.of_location ~rule:Rule.R8 ~loc msg :: !diags
        in
        let hint = "use Atomic/Domain.DLS or annotate (* lint: guarded-by <mutex> *)" in
        let check_label (ld : label_declaration) =
          if ld.pld_mutable = Mutable && not (is_atomic_type ld.pld_type) then
            report ld.pld_loc
              (Printf.sprintf
                 "mutable field %S in a module reachable from Task_pool fan-out; %s"
                 ld.pld_name.txt hint)
          else if is_hashtbl_type ld.pld_type then
            report ld.pld_loc
              (Printf.sprintf
                 "Hashtbl field %S in a module reachable from Task_pool fan-out; %s"
                 ld.pld_name.txt hint)
        in
        let check_top_binding (vb : value_binding) =
          match (Taint.unwrap vb.pvb_expr).pexp_desc with
          | Pexp_apply (fn, _) -> (
              match Taint.flatten_ident fn with
              | Some [ "ref" ] | Some [ "Stdlib"; "ref" ] ->
                  report vb.pvb_loc
                    (Printf.sprintf "module-level ref shared across domains; %s" hint)
              | Some parts when Taint.last2 parts = [ "Hashtbl"; "create" ] ->
                  report vb.pvb_loc
                    (Printf.sprintf "module-level Hashtbl shared across domains; %s" hint)
              | _ -> ())
          | _ -> ()
        in
        let it =
          {
            Ast_iterator.default_iterator with
            type_declaration =
              (fun self td ->
                (match td.ptype_kind with
                | Ptype_record labels -> List.iter check_label labels
                | _ -> ());
                Ast_iterator.default_iterator.type_declaration self td);
            structure_item =
              (fun self item ->
                (match item.pstr_desc with
                | Pstr_value (_, vbs) -> List.iter check_top_binding vbs
                | _ -> ());
                Ast_iterator.default_iterator.structure_item self item);
          }
        in
        it.structure it structure;
        List.sort Diagnostic.compare !diags

(* ---------------- R9: durability discipline ---------------- *)

(* Syntactic write->fsync->rename->dirsync order inside lib/store: a
   rename while any tracked fd has unsynced writes, or a close of an
   fd whose last write was never fsynced, is exactly the shape that
   loses acknowledged data on crash (the fault-injection suite proves
   the discipline dynamically; R9 keeps new code from regressing it). *)

let last_component parts = match List.rev parts with f :: _ -> Some f | [] -> None

let r9_open parts =
  match last_component parts with
  | Some ("open_trunc" | "open_append" | "openfile" | "open_out" | "open_out_bin" | "open_out_gen")
    ->
      true
  | _ -> false

let r9_write parts =
  match last_component parts with
  | Some
      ( "write" | "write_substring" | "single_write" | "write_all" | "output_string"
      | "output_bytes" | "truncate" | "ftruncate" ) ->
      true
  | _ -> false

let r9_fsync parts = last_component parts = Some "fsync"
let r9_close parts = last_component parts = Some "close"
let r9_rename parts = last_component parts = Some "rename"

(* The fd operand an I/O call names, as a stable syntactic key:
   [f] -> "f", [t.file] -> "t.file", [f.fd] -> "f.fd". *)
let rec expr_key (e : expression) =
  match (Taint.unwrap e).pexp_desc with
  | Pexp_ident { txt; _ } -> Some (String.concat "." (Longident.flatten txt))
  | Pexp_field (base, { txt; _ }) -> (
      match (expr_key base, List.rev (Longident.flatten txt)) with
      | Some b, f :: _ -> Some (b ^ "." ^ f)
      | _ -> None)
  | _ -> None

let first_positional args =
  List.find_map (function Asttypes.Nolabel, a -> Some a | _ -> None) args

let check_r9 ~path structure =
  if not (dir_scope [ "lib"; "store" ] path) then []
  else begin
    let diags = ref [] in
    let report loc msg = diags := Diagnostic.of_location ~rule:Rule.R9 ~loc msg :: !diags in
    (* dirty.(key) = true: bytes written since the last fsync of key *)
    let rec scan (dirty : (string, bool) Hashtbl.t) (e : expression) =
      match e.pexp_desc with
      | Pexp_let (_, vbs, body) ->
          List.iter
            (fun vb ->
              scan dirty vb.pvb_expr;
              match (Taint.unwrap vb.pvb_expr).pexp_desc with
              | Pexp_apply (fn, _)
                when Option.fold ~none:false ~some:r9_open (Taint.flatten_ident fn) -> (
                  match Taint.pattern_var_names vb.pvb_pat with
                  | [ v ] -> Hashtbl.replace dirty v false
                  | _ -> ())
              | _ -> ())
            vbs;
          scan dirty body
      | Pexp_sequence (a, b) ->
          scan dirty a;
          scan dirty b
      | Pexp_apply (fn, args) -> (
          List.iter (fun (_, a) -> scan dirty a) args;
          match Taint.flatten_ident fn with
          | None -> ()
          | Some parts ->
              let key () = Option.bind (first_positional args) expr_key in
              if r9_write parts then begin
                match key () with
                | Some k -> Hashtbl.replace dirty k true
                | None -> ()
              end
              else if r9_fsync parts then begin
                match key () with
                | Some k -> Hashtbl.replace dirty k false
                | None -> ()
              end
              else if r9_close parts then begin
                match key () with
                | Some k ->
                    if Hashtbl.find_opt dirty k = Some true then
                      report e.pexp_loc
                        (Printf.sprintf
                           "fd %S is closed with unsynced writes (unsynced-fd-leak): fsync \
                            before close"
                           k);
                    Hashtbl.remove dirty k
                | None -> ()
              end
              else if r9_rename parts then begin
                let unsynced =
                  Hashtbl.fold (fun k d acc -> if d then k :: acc else acc) dirty []
                in
                match unsynced with
                | k :: _ ->
                    report e.pexp_loc
                      (Printf.sprintf
                         "rename while fd %S has unsynced writes (rename-before-sync): the \
                          published file may be torn after a crash"
                         k)
                | [] -> ()
              end)
      | Pexp_ifthenelse (c, t, f) ->
          scan dirty c;
          scan dirty t;
          Option.iter (scan dirty) f
      | Pexp_match (s, cases) | Pexp_try (s, cases) ->
          scan dirty s;
          List.iter (fun c -> scan dirty c.pc_rhs) cases
      | Pexp_while (c, body) ->
          scan dirty c;
          scan dirty body
      | Pexp_for (_, a, b, _, body) ->
          scan dirty a;
          scan dirty b;
          scan dirty body
      | Pexp_constraint (e', _) | Pexp_coerce (e', _, _) | Pexp_open (_, e')
      | Pexp_letmodule (_, _, e') ->
          scan dirty e'
      | Pexp_fun (_, _, _, body) ->
          (* a nested closure is a separate execution: fresh fd state *)
          scan (Hashtbl.create 4) body
      | Pexp_tuple es | Pexp_array es -> List.iter (scan dirty) es
      | Pexp_construct (_, Some a) | Pexp_variant (_, Some a) | Pexp_field (a, _)
      | Pexp_assert a | Pexp_lazy a ->
          scan dirty a
      | Pexp_setfield (a, _, b) ->
          scan dirty a;
          scan dirty b
      | Pexp_record (fields, base) ->
          List.iter (fun (_, a) -> scan dirty a) fields;
          Option.iter (scan dirty) base
      | _ -> ()
    in
    let it =
      {
        Ast_iterator.default_iterator with
        structure_item =
          (fun self item ->
            (match item.pstr_desc with
            | Pstr_value (_, vbs) ->
                List.iter (fun vb -> scan (Hashtbl.create 4) vb.pvb_expr) vbs
            | _ -> ());
            (* do NOT recurse into expressions again; submodules still
               get their own structure_item visits *)
            match item.pstr_desc with
            | Pstr_module _ | Pstr_recmodule _ | Pstr_include _ ->
                Ast_iterator.default_iterator.structure_item self item
            | _ -> ());
      }
    in
    it.structure it structure;
    List.sort Diagnostic.compare !diags
  end

(* ---------------- the two-phase pipeline ---------------- *)

type parsed = { p_path : string; p_source : string; p_structure : structure }

let parse_units units =
  List.fold_left
    (fun (parsed, errors) { u_path; u_source } ->
      let path = Engine.normalize_path u_path in
      match Engine.parse_implementation ~path u_source with
      | Ok s -> ({ p_path = path; p_source = u_source; p_structure = s } :: parsed, errors)
      | Error e -> (parsed, e :: errors))
    ([], []) units
  |> fun (p, e) -> (List.rev p, List.rev e)

(* Phase 1 to a fixpoint: secret provenance can chain through modules
   (A returns a key, B re-exports A's result), so summaries are
   rebuilt with the previous round's lookup until the secret-value
   count stops growing. Bounded by the dependency depth; 5 rounds is
   generous for this tree. *)
let build_summaries parsed =
  let build lookup =
    List.map
      (fun p -> Summary.build ~path:p.p_path ~source:p.p_source ~lookup p.p_structure)
      parsed
  in
  let count summaries =
    List.fold_left (fun n s -> n + SS.cardinal s.Summary.secret_values) 0 summaries
  in
  let rec fix summaries rounds =
    if rounds >= 5 then summaries
    else
      let next = build (Summary.lookup_of_table (Summary.table_of_list summaries)) in
      if count next = count summaries then next else fix next (rounds + 1)
  in
  fix (build (fun _ _ -> false)) 0

let enabled rules r = List.exists (Rule.equal r) rules

let lint_units ?(check_mli = false) ~rules units =
  let parsed, errors = parse_units units in
  let t0 = Stdx.Clock.now_ns () in
  let need_summaries = enabled rules Rule.R7 || enabled rules Rule.R8 in
  let summaries = if need_summaries then build_summaries parsed else [] in
  let lookup =
    if need_summaries then Summary.lookup_of_table (Summary.table_of_list summaries)
    else fun _ _ -> false
  in
  let pool_users = List.exists (fun s -> s.Summary.uses_task_pool) summaries in
  let reachable_fn = Summary.fanout_reachable summaries in
  let guard_of = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace guard_of s.Summary.path s.Summary.guard) summaries;
  let summary_ns = Stdx.Clock.now_ns () -. t0 in
  let hits = Hashtbl.create 16 in
  let walls = Hashtbl.create 16 in
  let run rule f =
    let t0 = Stdx.Clock.now_ns () in
    let ds = f () in
    let dt = Stdx.Clock.now_ns () -. t0 in
    Hashtbl.replace walls rule (dt +. Option.value ~default:0.0 (Hashtbl.find_opt walls rule));
    Hashtbl.replace hits rule
      (List.length ds + Option.value ~default:0 (Hashtbl.find_opt hits rule));
    ds
  in
  let per_file = [ Rule.R1; Rule.R2; Rule.R3; Rule.R5; Rule.R6 ] in
  let diags =
    List.concat_map
      (fun p ->
        let engine_diags =
          List.concat_map
            (fun r ->
              if enabled rules r then
                run r (fun () ->
                    Engine.lint_structure ~rules:[ r ] ~path:p.p_path p.p_structure)
              else [])
            per_file
        in
        let r4 =
          if check_mli && enabled rules Rule.R4 then
            run Rule.R4 (fun () -> Engine.missing_interface ~rules p.p_path)
          else []
        in
        let r7 =
          if enabled rules Rule.R7 && not (dir_scope [ "examples" ] p.p_path) then
            run Rule.R7 (fun () -> Taint.check ~path:p.p_path ~lookup p.p_structure)
          else []
        in
        let r8 =
          if enabled rules Rule.R8 then
            run Rule.R8 (fun () ->
                let module_name = Summary.module_name_of_path p.p_path in
                let reachable = (not pool_users) || reachable_fn module_name in
                let guard =
                  Option.join (Hashtbl.find_opt guard_of p.p_path)
                in
                check_r8 ~path:p.p_path ~guard ~reachable p.p_structure)
          else []
        in
        let r9 =
          if enabled rules Rule.R9 then
            run Rule.R9 (fun () -> check_r9 ~path:p.p_path p.p_structure)
          else []
        in
        engine_diags @ r4 @ r7 @ r8 @ r9)
      parsed
  in
  let stats =
    List.filter_map
      (fun r ->
        match (Hashtbl.find_opt hits r, Hashtbl.find_opt walls r) with
        | None, None -> None
        | h, w ->
            Some
              {
                sr_rule = r;
                hits = Option.value ~default:0 h;
                wall_ns = Option.value ~default:0.0 w;
              })
      Rule.all
  in
  {
    diagnostics = List.sort Diagnostic.compare diags;
    errors;
    stats;
    n_units = List.length parsed;
    summary_ns;
  }

(* Walk roots exactly like {!Engine.lint_paths}, then run the project
   pipeline over everything found — the driver's entry point. *)
let lint_paths ~rules paths =
  let missing, present = List.partition (fun p -> not (Sys.file_exists p)) paths in
  let files = Engine.walk_all present in
  let units, read_errors =
    List.fold_left
      (fun (units, errs) f ->
        match In_channel.with_open_bin f In_channel.input_all with
        | source -> ({ u_path = f; u_source = source } :: units, errs)
        | exception Sys_error e -> (units, e :: errs))
      ([], []) files
  in
  let result = lint_units ~check_mli:true ~rules (List.rev units) in
  {
    result with
    errors =
      List.map (fun p -> p ^ ": no such file or directory") missing
      @ List.rev read_errors @ result.errors;
  }
