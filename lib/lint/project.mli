(** The project-level two-phase pipeline: parse every unit, build
    {!Summary} tables to a cross-module fixpoint, then run all enabled
    rules — the per-file R1–R6 core from {!Engine}, R7 from {!Taint}
    resolved against the summaries, and the R8 (domain-safety) and R9
    (durability) checkers defined here. Every rule is timed and
    counted for the driver's [--stats] output. *)

type unit_src = { u_path : string; u_source : string }

type rule_stat = { sr_rule : Rule.t; hits : int; wall_ns : float }

type result = {
  diagnostics : Diagnostic.t list;
  errors : string list;  (** unreadable / unparseable units *)
  stats : rule_stat list;
  n_units : int;
  summary_ns : float;  (** phase-1 wall time *)
}

val lint_units : ?check_mli:bool -> rules:Rule.t list -> unit_src list -> result
(** Run the pipeline over in-memory sources. [check_mli] (default
    false) enables R4, which probes the filesystem for [.mli] files —
    on for tree runs, off for fixture tests. *)

val lint_paths : rules:Rule.t list -> string list -> result
(** Walk files and directories like {!Engine.lint_paths}, then run
    [lint_units] over everything found. The driver's entry point. *)

(**/**)

val check_r8 :
  path:string ->
  guard:string option ->
  reachable:bool ->
  Parsetree.structure ->
  Diagnostic.t list

val check_r9 : path:string -> Parsetree.structure -> Diagnostic.t list
