(* Phase 1 of the project-level analyzer: one summary per compilation
   unit, recording what phase 2 needs to resolve cross-module facts —
   which exported values carry secret provenance (for R7's taint
   lookup), which modules this unit references (for R8's Task_pool
   reachability closure), and whether the module carries a
   [(* lint: guarded-by <m> *)] annotation (R8's sanctioned escape for
   mutex-protected state). Comments are dropped by the parser, so the
   guard annotation is recovered from the raw source text. *)

module SS = Set.Make (String)

type t = {
  module_name : string;  (** capitalized unit name, e.g. ["Pager"] *)
  path : string;
  secret_values : SS.t;  (** exported top-level values with key provenance *)
  refs : SS.t;  (** module names referenced anywhere in the unit *)
  uses_task_pool : bool;
  guard : string option;  (** mutex named by a guarded-by annotation *)
}

let module_name_of_path path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

(* [(* lint: guarded-by lock *)] — first such annotation wins; the
   name is free-form (a mutex binding, or prose like "writer lock"). *)
let guard_of_source source =
  let marker = "lint: guarded-by" in
  let mlen = String.length marker in
  let slen = String.length source in
  let rec find i =
    if i + mlen > slen then None
    else if String.sub source i mlen = marker then begin
      (* take the annotation text up to the closing comment *)
      let start = i + mlen in
      let stop =
        let rec scan j =
          if j + 1 >= slen then slen
          else if source.[j] = '*' && source.[j + 1] = ')' then j
          else scan (j + 1)
        in
        scan start
      in
      let name = String.trim (String.sub source start (stop - start)) in
      Some (if name = "" then "<unnamed>" else name)
    end
    else find (i + 1)
  in
  find 0

(* Every capitalized longident component the unit mentions, from
   expressions, type constructors and [open]s: the module-level
   reference edges the R8 reachability closure walks. *)
let refs_of_structure structure =
  let acc = ref SS.empty in
  let add_longident txt =
    List.iter
      (fun part ->
        if String.length part > 0 && part.[0] >= 'A' && part.[0] <= 'Z' then
          acc := SS.add part !acc)
      (Longident.flatten txt)
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Parsetree.Pexp_ident { txt; _ } | Parsetree.Pexp_construct ({ txt; _ }, _)
          | Parsetree.Pexp_new { txt; _ } ->
              add_longident txt
          | Parsetree.Pexp_field (_, { txt; _ }) -> add_longident txt
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
      typ =
        (fun self t ->
          (match t.ptyp_desc with
          | Parsetree.Ptyp_constr ({ txt; _ }, _) | Parsetree.Ptyp_class ({ txt; _ }, _) ->
              add_longident txt
          | _ -> ());
          Ast_iterator.default_iterator.typ self t);
      open_declaration =
        (fun self od ->
          (match od.popen_expr.pmod_desc with
          | Parsetree.Pmod_ident { txt; _ } -> add_longident txt
          | _ -> ());
          Ast_iterator.default_iterator.open_declaration self od);
      module_expr =
        (fun self me ->
          (match me.pmod_desc with
          | Parsetree.Pmod_ident { txt; _ } -> add_longident txt
          | _ -> ());
          Ast_iterator.default_iterator.module_expr self me);
    }
  in
  it.structure it structure;
  !acc

let build ~path ~source ~(lookup : Taint.lookup) structure =
  let refs = refs_of_structure structure in
  {
    module_name = module_name_of_path path;
    path;
    secret_values = Taint.structure_secrets ~lookup structure;
    refs;
    uses_task_pool = SS.mem "Task_pool" refs;
    guard = guard_of_source source;
  }

(* ---------------- summary table ---------------- *)

(* Several units may share a module name across libraries (Obs.Metrics
   vs Attacks.Metrics): lookups OR over all of them — conservative in
   exactly the direction a linter wants. *)
type table = (string, t) Hashtbl.t

let table_of_list summaries =
  let tbl = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.add tbl s.module_name s) summaries;
  tbl

let lookup_of_table tbl : Taint.lookup =
 fun m f ->
  List.exists (fun s -> SS.mem f s.secret_values) (Hashtbl.find_all tbl m)

(* Modules transitively referenced from any Task_pool-using unit: the
   closure approximates "code a pool worker domain can execute". *)
let fanout_reachable summaries =
  let by_name = table_of_list summaries in
  let reachable = Hashtbl.create 64 in
  let rec visit name =
    if not (Hashtbl.mem reachable name) then begin
      Hashtbl.replace reachable name ();
      List.iter (fun s -> SS.iter visit s.refs) (Hashtbl.find_all by_name name)
    end
  in
  List.iter (fun s -> if s.uses_task_pool then visit s.module_name) summaries;
  fun module_name -> Hashtbl.mem reachable module_name
