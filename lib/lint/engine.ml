(* The analysis core: parse one compilation unit with compiler-libs and
   walk it with Ast_iterator, collecting Diagnostic.t values for every
   enabled rule. All checks are purely syntactic — the linter never
   typechecks, so it can run on any tree that parses, before a build.
   The price is that R1/R2 are heuristic: they key on binding names and
   explicit type annotations rather than inferred types. The heuristics
   are tuned to this repo's naming conventions (DESIGN.md "Static
   analysis") and deliberate exceptions go in lint.allow. *)

open Parsetree

module SS = Set.Make (String)

(* ---------------- path scoping ---------------- *)

let normalize_path p =
  if String.length p >= 2 && String.sub p 0 2 = "./" then String.sub p 2 (String.length p - 2)
  else p

let has_suffix ~suf s =
  let ls = String.length s and l = String.length suf in
  ls >= l && String.sub s (ls - l) l = suf

let parts_of p = String.split_on_char '/' (normalize_path p)

(* [dir_scope ["lib";"crypto"] path] — does [path] contain the
   consecutive directory components lib/crypto? Works both for
   repo-relative paths (lib/crypto/hmac.ml) and absolute fixture paths
   (/tmp/x/lib/crypto/hmac.ml). *)
let dir_scope dirs path =
  let parts = parts_of path in
  let rec starts l sub =
    match (l, sub) with
    | _, [] -> true
    | [], _ -> false
    | x :: l', y :: sub' -> x = y && starts l' sub'
  in
  let rec scan = function
    | [] -> false
    | _ :: tl as l -> starts l dirs || scan tl
  in
  scan parts

let in_lib path = dir_scope [ "lib" ] path
let in_secret_scope path = dir_scope [ "lib"; "crypto" ] path || dir_scope [ "lib"; "core" ] path

(* R3's two sanctioned modules: the seedable PRNG and the clock shim. *)
let r3_exempt path =
  let p = normalize_path path in
  has_suffix ~suf:"lib/stdx/prng.ml" p || has_suffix ~suf:"lib/stdx/clock.ml" p
  || p = "lib/stdx/prng.ml" || p = "lib/stdx/clock.ml"

(* ---------------- name heuristics ---------------- *)

(* Bindings that denote key material by naming convention. Deliberately
   NOT a "key_*" prefix match: schema plumbing like key_column/key_pos
   names the primary-key column, not key material. *)
let secretish_name n =
  match n with
  | "key" | "master" | "ikm" | "prk" | "k0" | "k1" -> true
  | _ -> has_suffix ~suf:"_key" n

(* Operands R2 treats as crypto-sensitive: tags, MACs, digests, keys. *)
let tagish_name n =
  match n with
  | "tag" | "mac" | "digest" -> true
  | _ ->
      has_suffix ~suf:"_tag" n || has_suffix ~suf:"_mac" n || has_suffix ~suf:"_digest" n
      || secretish_name n

(* Type annotations that mark a binding as key material. *)
let secret_type_path = function
  | [ "Keys"; "master" ] | [ "Keys"; "t" ] | [ "Prf"; "key" ] | [ "Aead"; "key" ]
  | [ "Ctr"; "key" ] | [ "Aes128"; "key" ] | [ "Hmac"; "key" ] ->
      true
  | _ -> false

let last2 l =
  match List.rev l with b :: a :: _ -> [ a; b ] | [ only ] -> [ only ] | [] -> []

let is_secret_type (t : core_type) =
  match t.ptyp_desc with
  | Ptyp_constr ({ txt; _ }, _) -> secret_type_path (last2 (Longident.flatten txt))
  | _ -> false

(* ---------------- longident helpers ---------------- *)

let flatten_ident (e : expression) =
  match e.pexp_desc with Pexp_ident { txt; _ } -> Some (Longident.flatten txt) | _ -> None

let rec unwrap (e : expression) =
  match e.pexp_desc with
  | Pexp_constraint (e', _) | Pexp_coerce (e', _, _) -> unwrap e'
  | _ -> e

(* The binding name an expression refers to, if it is a plain variable
   or field access: [key] -> "key", [Crypto.Keys.master] -> "master",
   [k.mac_key] -> "mac_key". *)
let referenced_name e =
  match (unwrap e).pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match List.rev (Longident.flatten txt) with n :: _ -> Some n | [] -> None)
  | Pexp_field (_, { txt; _ }) -> (
      match List.rev (Longident.flatten txt) with n :: _ -> Some n | [] -> None)
  | _ -> None

let pattern_var_names p =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun self pat ->
          (match pat.ppat_desc with
          | Ppat_var { txt; _ } | Ppat_alias (_, { txt; _ }) -> acc := txt :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.pat self pat);
    }
  in
  it.pat it p;
  !acc

(* ---------------- sink classification (R1) ---------------- *)

type sink = Printing of string | Hex_dump | Exception_payload of string

let sink_of_fn parts =
  match parts with
  | "Printf" :: _ -> Some (Printing "Printf")
  | "Format" :: _ -> Some (Printing "Format")
  | [ f ]
    when List.mem f
           [ "print_string"; "print_endline"; "print_bytes"; "print_char";
             "prerr_string"; "prerr_endline"; "prerr_bytes"; "output_string" ] ->
      Some (Printing f)
  | _ -> (
      match List.rev parts with
      | "to_hex" :: _ -> Some Hex_dump
      | f :: _ when List.mem f [ "raise"; "raise_notrace"; "failwith"; "invalid_arg" ] ->
          Some (Exception_payload f)
      | _ -> None)

(* For exception sinks, a secret smuggled through a constructor, tuple
   or string concatenation still counts: [raise (Failure key)],
   [failwith ("bad " ^ key)]. Descend through those shapes only. *)
let rec exception_arg_names (e : expression) =
  let e = unwrap e in
  match e.pexp_desc with
  | Pexp_ident _ | Pexp_field _ -> (
      match referenced_name e with Some n -> [ (n, e.pexp_loc) ] | None -> [])
  | Pexp_construct (_, Some arg) -> exception_arg_names arg
  | Pexp_tuple args -> List.concat_map exception_arg_names args
  | Pexp_apply (fn, args) -> (
      match flatten_ident fn with
      | Some [ "^" ] | Some [ "Stdlib"; "^" ] ->
          List.concat_map (fun (_, a) -> exception_arg_names a) args
      | _ -> [])
  | _ -> []

(* ---------------- comparison classification (R2) ---------------- *)

let variable_time_eq parts =
  match parts with
  | [ "=" ] | [ "<>" ] | [ "compare" ] -> Some "polymorphic comparison"
  | [ "Stdlib"; ("=" | "<>" | "compare") ] -> Some "polymorphic comparison"
  | [ ("String" | "Bytes") as m; (("equal" | "compare") as f) ] -> Some (m ^ "." ^ f)
  | _ -> None

(* ---------------- banned ambient effects (R3) ---------------- *)

let nondeterministic_ident parts =
  match parts with
  | "Random" :: _ :: _ -> Some "Random"
  | [ "Sys"; "time" ] -> Some "Sys.time"
  | [ "Unix"; "gettimeofday" ] -> Some "Unix.gettimeofday"
  | [ "Unix"; "time" ] -> Some "Unix.time"
  | _ -> None

(* ---------------- raw file writes (R6) ---------------- *)

(* Write-capable file primitives. Durability (fsync placement, atomic
   renames, torn-write handling) is Store.Io's whole job; a stray
   open_out elsewhere silently reintroduces non-crash-safe output.
   Reads (In_channel, open_in) are unrestricted. *)
let raw_write_ident parts =
  let out_channel_writers =
    [ "open_text"; "open_bin"; "open_gen"; "with_open_text"; "with_open_bin"; "with_open_gen" ]
  in
  let unix_writers =
    [ "openfile"; "write"; "single_write"; "write_substring"; "ftruncate"; "rename"; "fsync" ]
  in
  match parts with
  | [ (("open_out" | "open_out_bin" | "open_out_gen") as f) ]
  | [ "Stdlib"; (("open_out" | "open_out_bin" | "open_out_gen") as f) ] ->
      Some f
  | [ "Out_channel"; f ] | [ "Stdlib"; "Out_channel"; f ] when List.mem f out_channel_writers ->
      Some ("Out_channel." ^ f)
  | [ "Unix"; f ] when List.mem f unix_writers -> Some ("Unix." ^ f)
  | _ -> None

(* ---------------- the per-file pass ---------------- *)

type ctx = {
  path : string;
  rules : Rule.t list;
  mutable secrets : SS.t; (* bindings annotated with a key type (R1) *)
  mutable diags : Diagnostic.t list;
}

let enabled ctx r = List.exists (Rule.equal r) ctx.rules

let report ctx rule loc msg = ctx.diags <- Diagnostic.of_location ~rule ~loc msg :: ctx.diags

(* Pass 1: collect names bound with an explicit key-material type, so
   R1 can recognise [let mk : Keys.master = ...; print_string mk]. *)
let collect_secrets ctx structure =
  let add_pattern p = List.iter (fun n -> ctx.secrets <- SS.add n ctx.secrets) (pattern_var_names p) in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun self p ->
          (match p.ppat_desc with
          | Ppat_constraint (inner, ty) when is_secret_type ty -> add_pattern inner
          | _ -> ());
          Ast_iterator.default_iterator.pat self p);
      value_binding =
        (fun self vb ->
          (match vb.pvb_constraint with
          | Some (Pvc_constraint { typ; _ }) when is_secret_type typ -> add_pattern vb.pvb_pat
          | Some (Pvc_coercion { coercion; _ }) when is_secret_type coercion ->
              add_pattern vb.pvb_pat
          | _ -> ());
          Ast_iterator.default_iterator.value_binding self vb);
    }
  in
  it.structure it structure

let secret_operand ctx e =
  match referenced_name e with
  | Some n -> if secretish_name n || SS.mem n ctx.secrets then Some n else None
  | None -> None

let tagish_operand ctx e =
  match referenced_name e with
  | Some n -> if tagish_name n || SS.mem n ctx.secrets then Some n else None
  | None -> None

let check_r1 ctx fn args loc =
  match flatten_ident fn with
  | None -> ()
  | Some parts -> (
      match sink_of_fn parts with
      | None -> ()
      | Some (Printing what) ->
          List.iter
            (fun (_, a) ->
              match secret_operand ctx a with
              | Some n ->
                  report ctx Rule.R1 loc
                    (Printf.sprintf "key material %S must not reach %s (secret hygiene)" n what)
              | None -> ())
            args
      | Some Hex_dump ->
          List.iter
            (fun (_, a) ->
              match secret_operand ctx a with
              | Some n ->
                  report ctx Rule.R1 loc
                    (Printf.sprintf "key material %S must not be hex-dumped" n)
              | None -> ())
            args
      | Some (Exception_payload f) ->
          List.iter
            (fun (_, a) ->
              List.iter
                (fun (n, nloc) ->
                  if secretish_name n || SS.mem n ctx.secrets then
                    report ctx Rule.R1 nloc
                      (Printf.sprintf "key material %S must not flow into a %s payload" n f))
                (exception_arg_names a))
            args)

let check_r2 ctx fn args loc =
  match flatten_ident fn with
  | None -> ()
  | Some parts -> (
      match variable_time_eq parts with
      | None -> ()
      | Some what ->
          List.iter
            (fun (_, a) ->
              match tagish_operand ctx a with
              | Some n ->
                  report ctx Rule.R2 loc
                    (Printf.sprintf
                       "%s on crypto operand %S is not constant-time; use Stdx.Bytes_util.ct_equal"
                       what n)
              | None -> ())
            args)

let lint_structure ~rules ~path (structure : structure) =
  let ctx = { path = normalize_path path; rules; secrets = SS.empty; diags = [] } in
  let secret_scope = in_secret_scope ctx.path in
  let lib_scope = in_lib ctx.path in
  let r1 = enabled ctx Rule.R1 && secret_scope in
  let r2 = enabled ctx Rule.R2 && secret_scope in
  let r3 = enabled ctx Rule.R3 && not (r3_exempt ctx.path) in
  let r5 = enabled ctx Rule.R5 && lib_scope in
  let r6 = enabled ctx Rule.R6 && not (dir_scope [ "lib"; "store" ] ctx.path) in
  if r1 then collect_secrets ctx structure;
  let expr_iter self (e : expression) =
    (match e.pexp_desc with
    | Pexp_apply (fn, args) ->
        if r1 then check_r1 ctx fn args e.pexp_loc;
        if r2 then check_r2 ctx fn args e.pexp_loc
    | Pexp_ident { txt; _ } -> (
        let parts = Longident.flatten txt in
        (if r3 then
           match nondeterministic_ident parts with
           | Some what ->
               report ctx Rule.R3 e.pexp_loc
                 (Printf.sprintf
                    "%s breaks seed-reproducibility; use Stdx.Prng (randomness) or Stdx.Clock \
                     (time) instead"
                    what)
           | None -> ());
        (if r6 then
           match raw_write_ident parts with
           | Some what ->
               report ctx Rule.R6 e.pexp_loc
                 (Printf.sprintf
                    "raw file write %s outside lib/store; route output through Store.Io \
                     (crash-safe, fault-injectable)"
                    what)
           | None -> ());
        if r5 then
          match parts with
          | [ "Obj"; "magic" ] ->
              report ctx Rule.R5 e.pexp_loc "Obj.magic defeats the type system"
          | _ -> ())
    | Pexp_assert { pexp_desc = Pexp_construct ({ txt = Lident "false"; _ }, None); _ }
      when r5 ->
        report ctx Rule.R5 e.pexp_loc
          "assert false is a partial escape; raise a descriptive exception instead"
    | Pexp_try (_, cases) when r5 ->
        List.iter
          (fun c ->
            match (c.pc_lhs.ppat_desc, c.pc_guard) with
            | Ppat_any, None ->
                report ctx Rule.R5 c.pc_lhs.ppat_loc
                  "catch-all 'with _ ->' swallows unexpected exceptions; match specific ones"
            | _ -> ())
          cases
    | _ -> ());
    Ast_iterator.default_iterator.expr self e
  in
  let it = { Ast_iterator.default_iterator with expr = expr_iter } in
  it.structure it structure;
  List.sort Diagnostic.compare ctx.diags

(* ---------------- parsing ---------------- *)

let parse_implementation ~path source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf (normalize_path path);
  match Parse.implementation lexbuf with
  | structure -> Ok structure
  | exception Syntaxerr.Error _ -> Error (Printf.sprintf "%s: syntax error" path)
  | exception _ -> Error (Printf.sprintf "%s: unparseable" path)

let lint_source ~rules ~path source =
  match parse_implementation ~path source with
  | Error _ as e -> e
  | Ok structure -> Ok (lint_structure ~rules ~path structure)

let lint_file ~rules path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error e
  | source -> lint_source ~rules ~path source

(* ---------------- tree walking + R4 ---------------- *)

let rec walk acc p =
  if Sys.is_directory p then
    let base = Filename.basename p in
    if base = "_build" || (String.length base > 0 && base.[0] = '.' && base <> ".") then acc
    else
      let entries = Sys.readdir p in
      Array.sort String.compare entries;
      Array.fold_left (fun acc f -> walk acc (Filename.concat p f)) acc entries
  else if Filename.check_suffix p ".ml" then p :: acc
  else acc

let missing_interface ~rules path =
  if List.exists (Rule.equal Rule.R4) rules && in_lib path
     && not (Sys.file_exists (Filename.chop_suffix path ".ml" ^ ".mli"))
  then
    [ Diagnostic.v ~rule:Rule.R4 ~file:(normalize_path path) ~line:1 ~col:0
        "module has no .mli; every lib/ module must declare its interface" ]
  else []

let walk_all paths = List.rev (List.fold_left walk [] paths)

let lint_paths ~rules paths =
  let missing, present = List.partition (fun p -> not (Sys.file_exists p)) paths in
  let files = walk_all present in
  let diags, errors =
    List.fold_left
      (fun (diags, errors) f ->
        let r4 = missing_interface ~rules f in
        match lint_file ~rules f with
        | Ok ds -> (diags @ r4 @ ds, errors)
        | Error e -> (diags @ r4, errors @ [ e ]))
      ([], List.map (fun p -> p ^ ": no such file or directory") missing)
      files
  in
  (List.sort Diagnostic.compare diags, errors)
