(* R7 secret-taint flow: a flow-insensitive, name-and-annotation-seeded
   taint analysis over one compilation unit, resolved against the
   cross-module summary table built by {!Summary}/{!Project}.

   Two taint classes, because the proxy is *client-side*: key material
   ([Key]) must reach no sink at all, while pre-encryption plaintext
   and query predicates ([Plain]) may legitimately travel through
   exception payloads back to the client but must never land in
   printers, trace/metrics labels, or serialized bytes — the sinks a
   snapshot adversary reads. Sanitizers — AEAD, MAC, digests, the
   scrub helpers — launder taint: their results are public by design.

   The analysis is deliberately syntactic, like the rest of wre-lint:
   taint enters at secret-typed or secret-named bindings and at calls
   to known secret-returning functions (builtin table + cross-module
   summaries), and propagates through let-bindings, tuples,
   constructors, string concatenation/formatting, and function names
   whose body was found tainted. Arbitrary application does NOT
   propagate — [tag_of (prf ~key m)] is public. *)

open Parsetree

module SS = Set.Make (String)

type cls = Key | Plain

let cls_string = function Key -> "key material" | Plain -> "plaintext"

(* ---------------- name / type heuristics ---------------- *)

let has_suffix ~suf s =
  let ls = String.length s and l = String.length suf in
  ls >= l && String.sub s (ls - l) l = suf

let has_prefix ~pre s =
  let ls = String.length s and l = String.length pre in
  ls >= l && String.sub s 0 l = pre

(* Key-material names: mirrors Engine's R1 convention. *)
let keyish_name n =
  match n with
  | "key" | "master" | "ikm" | "prk" | "k0" | "k1" -> true
  | _ -> has_suffix ~suf:"_key" n

(* Pre-encryption plaintext and query-predicate names: the leakage the
   paper's Thm V.1 never licenses through an observability channel. *)
let plainish_name n =
  match n with
  | "plain" | "plaintext" | "residual" | "predicate" | "where" -> true
  | _ -> has_suffix ~suf:"_plain" n || has_prefix ~pre:"plain_" n

let name_class n = if keyish_name n then Some Key else if plainish_name n then Some Plain else None

let secret_type_path = function
  | [ "Keys"; "master" ] | [ "Keys"; "t" ] | [ "Prf"; "key" ] | [ "Aead"; "key" ]
  | [ "Ctr"; "key" ] | [ "Aes128"; "key" ] | [ "Hmac"; "key" ] ->
      true
  | _ -> false

let last2 l =
  match List.rev l with b :: a :: _ -> [ a; b ] | [ only ] -> [ only ] | [] -> []

let is_secret_type (t : core_type) =
  match t.ptyp_desc with
  | Ptyp_constr ({ txt; _ }, _) -> secret_type_path (last2 (Longident.flatten txt))
  | _ -> false

(* ---------------- call tables ---------------- *)

(* Functions whose *result* carries key material, keyed on the last two
   longident components so [Crypto.Keys.generate] and [Keys.generate]
   both match. *)
let secret_source_call parts =
  match last2 parts with
  | [ "Keys"; _ ] -> true (* generate/of_raw/export/data_key/prf_key/salt_seed/shuffle_key *)
  | [ "Prf"; "of_raw" ] | [ "Aead"; "of_raw" ] | [ "Ctr"; "of_raw" ] | [ "Aes128"; "of_raw" ]
  | [ "Hkdf"; ("extract" | "expand" | "derive") ]
  | [ "Prng"; "export" ] ->
      true
  | _ -> false

(* Sanctioned sanitizers: their output is public by design (AEAD
   ciphertext, MACs, digests, PRF tags) or scrubbed (scrub prefix). *)
let sanitizer_call parts =
  match last2 parts with
  | [ "Aead"; "encrypt" ]
  | [ "Hmac"; ("mac" | "mac_hex" | "mac_u64" | "verify") ]
  | [ "Sha256"; ("digest" | "digest_hex" | "finalize") ]
  | [ "Siphash"; _ ]
  | [ "Prf"; ("tag" | "tag_salt_only" | "tag_string") ] ->
      true
  | _ -> (
      match List.rev parts with
      | f :: _ -> has_prefix ~pre:"scrub" f
      | [] -> false)

(* String-shaped transforms through which taint survives: hex/concat/
   substring/format of a secret is still the secret. *)
let propagator_call parts =
  match parts with
  | [ "^" ] | [ "Stdlib"; "^" ] | [ "fst" ] | [ "snd" ] -> true
  | [ "Printf"; "sprintf" ] | [ "Format"; "asprintf" ] -> true
  | _ -> (
      match last2 parts with
      | [ "Bytes_util"; ("to_hex" | "of_hex") ] -> true
      | [ "String"; ("concat" | "cat" | "sub" | "trim" | "uppercase_ascii" | "lowercase_ascii") ]
        ->
          true
      | [ "Bytes"; ("to_string" | "of_string" | "sub_string" | "sub" | "copy") ] -> true
      | [ "Option"; ("get" | "value") ] -> true
      | [ ("to_hex" | "of_hex") ] -> true
      | _ -> false)

(* ---------------- sinks ---------------- *)

type sink =
  | Print of string  (** actual output, not sprintf *)
  | Obs_label of string  (** trace span/event names and attrs, metric names *)
  | Exn_payload of string  (** raise/failwith — flagged for [Key] taint only *)
  | Serialize of string  (** Store.Io writes / Codec.put_* outside lib/store *)

let print_fns = [ "printf"; "eprintf"; "fprintf"; "ifprintf"; "kfprintf" ]

let sink_of_call ~in_store parts =
  match parts with
  | [ ("Printf" | "Format") as m; f ] when List.mem f print_fns -> Some (Print (m ^ "." ^ f))
  | [ "Format"; (("pp_print_string" | "print_string") as f) ] -> Some (Print ("Format." ^ f))
  | [ f ]
    when List.mem f
           [ "print_string"; "print_endline"; "print_bytes"; "print_char";
             "prerr_string"; "prerr_endline"; "prerr_bytes"; "output_string" ] ->
      Some (Print f)
  | [ f ] when List.mem f [ "raise"; "raise_notrace"; "failwith"; "invalid_arg" ] ->
      Some (Exn_payload f)
  | _ -> (
      match last2 parts with
      | [ "Trace"; (("event" | "with_span" | "add") as f) ] -> Some (Obs_label ("Trace." ^ f))
      | [ "Metrics"; (("counter" | "gauge" | "histogram") as f) ] ->
          Some (Obs_label ("Metrics." ^ f))
      | [ "Io"; (("write" | "atomic_write_text") as f) ] when not in_store ->
          Some (Serialize ("Io." ^ f))
      | [ "Codec"; f ] when (not in_store) && has_prefix ~pre:"put_" f ->
          Some (Serialize ("Codec." ^ f))
      | _ -> None)

(* ---------------- expression taint ---------------- *)

let flatten_ident (e : expression) =
  match e.pexp_desc with Pexp_ident { txt; _ } -> Some (Longident.flatten txt) | _ -> None

let rec unwrap (e : expression) =
  match e.pexp_desc with
  | Pexp_constraint (e', _) | Pexp_coerce (e', _, _) -> unwrap e'
  | _ -> e

let referenced_name e =
  match (unwrap e).pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match List.rev (Longident.flatten txt) with n :: _ -> Some n | [] -> None)
  | Pexp_field (_, { txt; _ }) -> (
      match List.rev (Longident.flatten txt) with n :: _ -> Some n | [] -> None)
  | _ -> None

let pattern_var_names p =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun self pat ->
          (match pat.ppat_desc with
          | Ppat_var { txt; _ } | Ppat_alias (_, { txt; _ }) -> acc := txt :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.pat self pat);
    }
  in
  it.pat it p;
  !acc

type env = { key_names : SS.t; plain_names : SS.t }

let empty_env = { key_names = SS.empty; plain_names = SS.empty }

let env_add env n = function
  | Key -> { env with key_names = SS.add n env.key_names }
  | Plain -> { env with plain_names = SS.add n env.plain_names }

let env_class env n =
  if SS.mem n env.key_names then Some Key
  else if SS.mem n env.plain_names then Some Plain
  else name_class n

(* [lookup m f] answers "does module [m] export a secret-provenance
   value [f]?" against the project summary table; single-file runs pass
   a constant-false lookup and still see same-file flows. *)
type lookup = string -> string -> bool

let module_of_call parts = match last2 parts with [ m; f ] -> Some (m, f) | _ -> None

(* Witness: taint class plus the binding name that carries it, for the
   diagnostic message. Returns [None] for untainted expressions. *)
let rec tainted ~env ~(lookup : lookup) (e : expression) : (cls * string) option =
  let e = unwrap e in
  match e.pexp_desc with
  | Pexp_ident _ | Pexp_field _ -> (
      match referenced_name e with
      | Some n -> Option.map (fun c -> (c, n)) (env_class env n)
      | None -> None)
  | Pexp_tuple es -> first_tainted ~env ~lookup es
  | Pexp_construct (_, Some arg) | Pexp_variant (_, Some arg) -> tainted ~env ~lookup arg
  | Pexp_sequence (_, e') | Pexp_let (_, _, e') | Pexp_letmodule (_, _, e') -> tainted ~env ~lookup e'
  | Pexp_ifthenelse (_, t, f) ->
      first_tainted ~env ~lookup (t :: Option.to_list f)
  | Pexp_match (_, cases) | Pexp_try (_, cases) ->
      first_tainted ~env ~lookup (List.map (fun c -> c.pc_rhs) cases)
  | Pexp_apply (fn, args) -> (
      match flatten_ident fn with
      | Some parts when sanitizer_call parts -> None
      | Some parts when secret_source_call parts -> Some (Key, String.concat "." parts)
      | Some parts when propagator_call parts ->
          first_tainted ~env ~lookup (List.map snd args)
      | Some parts -> (
          (* A call to a function whose summary (cross-module) or local
             taint env (same module) marks its result secret. *)
          match module_of_call parts with
          | Some (m, f) when String.length m > 0 && m.[0] >= 'A' && m.[0] <= 'Z' ->
              if lookup m f then Some (Key, m ^ "." ^ f) else None
          | _ -> (
              match parts with
              | [ f ] -> Option.map (fun c -> (c, f ^ " (tainted function)")) (env_class env f)
              | _ -> None))
      | None -> None)
  | _ -> None

and first_tainted ~env ~lookup es = List.find_map (tainted ~env ~lookup) es

(* ---------------- per-unit taint environment ---------------- *)

(* Collect names bound with a secret type annotation. *)
let annotated_secrets structure =
  let acc = ref SS.empty in
  let add_pattern p = List.iter (fun n -> acc := SS.add n !acc) (pattern_var_names p) in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun self p ->
          (match p.ppat_desc with
          | Ppat_constraint (inner, ty) when is_secret_type ty -> add_pattern inner
          | _ -> ());
          Ast_iterator.default_iterator.pat self p);
      value_binding =
        (fun self vb ->
          (match vb.pvb_constraint with
          | Some (Pvc_constraint { typ; _ }) when is_secret_type typ -> add_pattern vb.pvb_pat
          | Some (Pvc_coercion { coercion; _ }) when is_secret_type coercion ->
              add_pattern vb.pvb_pat
          | _ -> ());
          Ast_iterator.default_iterator.value_binding self vb);
    }
  in
  it.structure it structure;
  !acc

(* A binding's taint is the taint of the value it produces: for
   function bindings that is the body's result, so descend through the
   parameter chain. Only used on binding right-hand sides — a closure
   passed as a sink *argument* is not itself leaked. *)
let rec fun_body e =
  match (unwrap e).pexp_desc with Pexp_fun (_, _, _, b) -> fun_body b | _ -> e

(* Flow-insensitive fixpoint over every value binding in the unit: a
   bound name becomes tainted when its right-hand side is, so taint
   survives [let k2 = k in ... k2 ...] chains and function results.
   Bounded: each round only grows the env, names are finite. *)
let unit_env ~lookup structure =
  let env =
    ref
      (SS.fold (fun n e -> env_add e n Key)
         (annotated_secrets structure)
         empty_env)
  in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 10 do
    changed := false;
    incr rounds;
    let it =
      {
        Ast_iterator.default_iterator with
        value_binding =
          (fun self vb ->
          (match tainted ~env:!env ~lookup (fun_body vb.pvb_expr) with
          | Some (c, _) ->
              List.iter
                (fun n ->
                  if env_class !env n <> Some Key then begin
                    let before = !env in
                    env := env_add !env n c;
                    if !env <> before then changed := true
                  end)
                (pattern_var_names vb.pvb_pat)
          | None -> ());
          Ast_iterator.default_iterator.value_binding self vb);
      }
    in
    it.structure it structure
  done;
  !env

(* Exported value names of the unit that carry [Key] taint: the
   cross-module summary (phase 1). Top-level bindings only. *)
let structure_secrets ~lookup structure =
  let env = unit_env ~lookup structure in
  List.fold_left
    (fun acc item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.fold_left
            (fun acc vb ->
              List.fold_left
                (fun acc n -> if SS.mem n env.key_names then SS.add n acc else acc)
                acc (pattern_var_names vb.pvb_pat))
            acc vbs
      | _ -> acc)
    SS.empty structure

(* ---------------- the R7 check ---------------- *)

(* Exception payloads descend through constructors, tuples and [^] so
   [raise (Failure ("bad " ^ key))] is caught. *)
let rec exn_payload_witness ~env ~lookup (e : expression) =
  let e = unwrap e in
  match e.pexp_desc with
  | Pexp_ident _ | Pexp_field _ -> (
      match referenced_name e with
      | Some n -> ( match env_class env n with Some Key -> Some (Key, n) | _ -> None)
      | None -> None)
  | Pexp_construct (_, Some arg) -> exn_payload_witness ~env ~lookup arg
  | Pexp_tuple args -> List.find_map (exn_payload_witness ~env ~lookup) args
  | Pexp_apply (fn, args) -> (
      match flatten_ident fn with
      | Some [ "^" ] | Some [ "Stdlib"; "^" ] ->
          List.find_map (fun (_, a) -> exn_payload_witness ~env ~lookup a) args
      | _ -> None)
  | _ -> None

let dir_scope dirs path =
  let parts = String.split_on_char '/' path in
  let rec starts l sub =
    match (l, sub) with
    | _, [] -> true
    | [], _ -> false
    | x :: l', y :: sub' -> x = y && starts l' sub'
  in
  let rec scan = function [] -> false | _ :: tl as l -> starts l dirs || scan tl in
  scan parts

let check ~path ~(lookup : lookup) structure =
  let in_store = dir_scope [ "lib"; "store" ] path in
  let env = unit_env ~lookup structure in
  let diags = ref [] in
  let report loc msg = diags := Diagnostic.of_location ~rule:Rule.R7 ~loc msg :: !diags in
  let check_apply fn args loc =
    match flatten_ident fn with
    | None -> ()
    | Some parts -> (
        match sink_of_call ~in_store parts with
        | None -> ()
        | Some (Exn_payload what) -> (
            match List.find_map (fun (_, a) -> exn_payload_witness ~env ~lookup a) args with
            | Some (_, n) ->
                report loc
                  (Printf.sprintf "key material %S must not flow into a %s payload" n what)
            | None -> ())
        | Some sink -> (
            match first_tainted ~env ~lookup (List.map snd args) with
            | Some (c, n) ->
                let what, hint =
                  match sink with
                  | Print w -> (w, "secrets must never be printed")
                  | Obs_label w ->
                      (w, "scrub labels to length+digest (see DESIGN.md sink table)")
                  | Serialize w ->
                      (w, "serialization outside lib/store; encrypt or MAC first")
                  | Exn_payload w -> (w, "")
                in
                report loc
                  (Printf.sprintf "%s %S flows into %s (%s)" (cls_string c) n what hint)
            | None -> ()))
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_apply (fn, args) -> check_apply fn args e.pexp_loc
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.structure it structure;
  List.sort Diagnostic.compare !diags
