(** The wre-lint analysis core.

    Parses [.ml] sources with compiler-libs and enforces the R1–R6
    hygiene rules (see {!Rule}) with purely syntactic checks, so the
    pass runs on any tree that parses — no build required. Scoping is
    path-based: R1/R2 fire only under [lib/crypto] and [lib/core],
    R5 under [lib/], R3 everywhere except [lib/stdx/prng.ml] and
    [lib/stdx/clock.ml], R4 for every [lib/] module, R6 everywhere
    except [lib/store] (the one module allowed raw file writes). *)

val lint_structure : rules:Rule.t list -> path:string -> Parsetree.structure -> Diagnostic.t list
(** Run the AST rules on an already-parsed unit. [path] decides which
    rules are in scope and is stamped on diagnostics. *)

val lint_source : rules:Rule.t list -> path:string -> string -> (Diagnostic.t list, string) result
(** Parse [source] (attributed to [path]) and lint it. *)

val lint_file : rules:Rule.t list -> string -> (Diagnostic.t list, string) result

val lint_paths : rules:Rule.t list -> string list -> Diagnostic.t list * string list
(** Walk files and directories (skipping [_build] and dot-dirs),
    lint every [.ml], and apply the R4 interface-coverage check.
    Returns sorted diagnostics plus read/parse errors. *)

val parse_implementation :
  path:string -> string -> (Parsetree.structure, string) result
(** Parse one unit with compiler-libs, attributing positions to [path].
    Exposed so {!Project} parses each unit exactly once. *)

val walk_all : string list -> string list
(** Expand files and directories into the [.ml] files beneath them,
    skipping [_build] and dot-directories, in sorted order. *)

val missing_interface : rules:Rule.t list -> string -> Diagnostic.t list
(** The R4 interface-coverage check for one [.ml] path. *)

(**/**)

val secretish_name : string -> bool
val tagish_name : string -> bool
val normalize_path : string -> string
