type t = R1 | R2 | R3 | R4 | R5 | R6 | R7 | R8 | R9

let all = [ R1; R2; R3; R4; R5; R6; R7; R8; R9 ]

let to_string = function
  | R1 -> "R1"
  | R2 -> "R2"
  | R3 -> "R3"
  | R4 -> "R4"
  | R5 -> "R5"
  | R6 -> "R6"
  | R7 -> "R7"
  | R8 -> "R8"
  | R9 -> "R9"

let of_string s =
  match String.uppercase_ascii (String.trim s) with
  | "R1" -> Some R1
  | "R2" -> Some R2
  | "R3" -> Some R3
  | "R4" -> Some R4
  | "R5" -> Some R5
  | "R6" -> Some R6
  | "R7" -> Some R7
  | "R8" -> Some R8
  | "R9" -> Some R9
  | _ -> None

let describe = function
  | R1 -> "secret hygiene: key material must not reach printers, hex dumps or exception payloads"
  | R2 -> "constant-time discipline: no variable-time equality on tag/MAC/key operands"
  | R3 -> "determinism: ambient randomness and wall clocks only in Stdx.Prng / Stdx.Clock"
  | R4 -> "interface coverage: every .ml under lib/ needs a matching .mli"
  | R5 -> "no partial escapes: Obj.magic, assert false, catch-all exception handlers"
  | R6 -> "file-I/O discipline: raw file writes only inside lib/store (use Store.Io elsewhere)"
  | R7 ->
      "secret-taint flow: secret provenance (keys, plaintext, PRNG state) must not flow through \
       bindings, tuples or cross-module calls into printers, trace/metrics labels, exception \
       payloads or serialization outside lib/store"
  | R8 ->
      "domain-safety: mutable fields, refs and hashtables in modules reachable from Task_pool \
       fan-out must be Atomic, Domain.DLS or lint:guarded-by-annotated"
  | R9 ->
      "durability discipline: lib/store writes follow write -> fsync -> rename -> dirsync; no \
       rename over unsynced data, no close of an unsynced fd"

(* Severity is reporting metadata (SARIF level, JSON field); the CI
   gate fails on any unsuppressed finding regardless of severity. *)
type severity = Error | Warning

let severity r : severity =
  match r with R1 | R2 | R3 | R6 | R7 | R8 | R9 -> Error | R4 | R5 -> Warning

let severity_string (s : severity) =
  match s with Error -> "error" | Warning -> "warning"

let equal (a : t) (b : t) = a = b
