type t = R1 | R2 | R3 | R4 | R5 | R6

let all = [ R1; R2; R3; R4; R5; R6 ]

let to_string = function
  | R1 -> "R1"
  | R2 -> "R2"
  | R3 -> "R3"
  | R4 -> "R4"
  | R5 -> "R5"
  | R6 -> "R6"

let of_string s =
  match String.uppercase_ascii (String.trim s) with
  | "R1" -> Some R1
  | "R2" -> Some R2
  | "R3" -> Some R3
  | "R4" -> Some R4
  | "R5" -> Some R5
  | "R6" -> Some R6
  | _ -> None

let describe = function
  | R1 -> "secret hygiene: key material must not reach printers, hex dumps or exception payloads"
  | R2 -> "constant-time discipline: no variable-time equality on tag/MAC/key operands"
  | R3 -> "determinism: ambient randomness and wall clocks only in Stdx.Prng / Stdx.Clock"
  | R4 -> "interface coverage: every .ml under lib/ needs a matching .mli"
  | R5 -> "no partial escapes: Obj.magic, assert false, catch-all exception handlers"
  | R6 -> "file-I/O discipline: raw file writes only inside lib/store (use Store.Io elsewhere)"

let equal (a : t) (b : t) = a = b
