(** R7 secret-taint flow: flow-insensitive taint analysis over one
    compilation unit, resolved against a cross-module lookup.

    Two taint classes: [Key] (key material, PRNG state — must reach no
    sink at all) and [Plain] (pre-encryption plaintext and query
    predicates — may travel through exception payloads back to the
    client, but never into printers, trace/metrics labels, or
    serialized bytes). Sanitizers (AEAD, MAC, digests, [scrub_*])
    launder taint; arbitrary function application does not propagate
    it. *)

type cls = Key | Plain

val cls_string : cls -> string

type lookup = string -> string -> bool
(** [lookup m f]: does module [m] export a secret-provenance value
    [f]? Single-file runs pass [fun _ _ -> false]. *)

val check :
  path:string -> lookup:lookup -> Parsetree.structure -> Diagnostic.t list
(** Run R7 on one unit. [path] scopes the serialization sinks (raw
    writes are legitimate inside [lib/store]). *)

val structure_secrets :
  lookup:lookup -> Parsetree.structure -> Set.Make(String).t
(** Top-level value names of the unit that carry [Key] taint — the
    unit's contribution to the phase-1 summary table. *)

val dir_scope : string list -> string -> bool
(** [dir_scope ["lib"; "store"] path]: does [path] contain these
    consecutive directory components? *)

(**/**)

(* Shared syntactic helpers, reused by {!Project}'s R8/R9 checkers. *)

val unwrap : Parsetree.expression -> Parsetree.expression
val flatten_ident : Parsetree.expression -> string list option
val last2 : string list -> string list
val pattern_var_names : Parsetree.pattern -> string list
val keyish_name : string -> bool
val plainish_name : string -> bool
val sanitizer_call : string list -> bool
val secret_source_call : string list -> bool
