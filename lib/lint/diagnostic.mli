(** A single lint finding, anchored to a [file:line:col] position. *)

type t = { rule : Rule.t; file : string; line : int; col : int; message : string }

val v : rule:Rule.t -> file:string -> line:int -> col:int -> string -> t
val of_location : rule:Rule.t -> loc:Location.t -> string -> t

val to_string : t -> string
(** [file:line:col: [Rn] message] — the CI-facing format. *)

val compare : t -> t -> int
(** Order by file, then line, column, rule — for stable output. *)
