(** Phase 1 of the project-level analyzer: per-compilation-unit
    summaries and the cross-module lookup table built from them. *)

type t = {
  module_name : string;  (** capitalized unit name, e.g. ["Pager"] *)
  path : string;
  secret_values : Set.Make(String).t;
      (** exported top-level values with key provenance *)
  refs : Set.Make(String).t;  (** module names referenced by the unit *)
  uses_task_pool : bool;
  guard : string option;
      (** mutex named by a [(* lint: guarded-by <m> *)] annotation *)
}

val module_name_of_path : string -> string

val guard_of_source : string -> string option
(** Recover the guarded-by annotation from raw source text (the parser
    drops comments). *)

val build :
  path:string -> source:string -> lookup:Taint.lookup -> Parsetree.structure -> t

type table = (string, t) Hashtbl.t

val table_of_list : t list -> table
(** Units may share a module name across libraries; all are kept and
    lookups OR over them. *)

val lookup_of_table : table -> Taint.lookup

val fanout_reachable : t list -> string -> bool
(** Membership in the transitive closure of module references from
    every [Task_pool]-using unit: "code a worker domain can execute". *)
