type entry = { rule : Rule.t; path : string; line : int option; source : string }
type t = entry list

let empty = []

let normalize_path p =
  let p = if String.length p >= 2 && String.sub p 0 2 = "./" then String.sub p 2 (String.length p - 2) else p in
  p

(* "R5 lib/sqldb/pager.ml:42" or "R3 bench/exp_micro.ml" — '#' starts a
   comment, blank lines are skipped. *)
let parse_line ~source ln =
  let ln = match String.index_opt ln '#' with Some i -> String.sub ln 0 i | None -> ln in
  let ln = String.trim ln in
  if ln = "" then Ok None
  else
    match String.split_on_char ' ' ln |> List.filter (fun s -> s <> "") with
    | [ rule_s; target ] | rule_s :: target :: _ -> (
        match Rule.of_string rule_s with
        | None -> Error (Printf.sprintf "%s: unknown rule %S" source rule_s)
        | Some rule -> (
            match String.rindex_opt target ':' with
            | Some i when i < String.length target - 1
                          && String.for_all
                               (fun c -> c >= '0' && c <= '9')
                               (String.sub target (i + 1) (String.length target - i - 1)) ->
                let line = int_of_string (String.sub target (i + 1) (String.length target - i - 1)) in
                Ok (Some { rule; path = normalize_path (String.sub target 0 i); line = Some line; source })
            | _ -> Ok (Some { rule; path = normalize_path target; line = None; source })))
    | _ -> Error (Printf.sprintf "%s: malformed entry %S (want: RULE path[:line])" source ln)

let of_string ?(source = "<allowlist>") contents =
  let lines = String.split_on_char '\n' contents in
  let rec go acc i = function
    | [] -> Ok (List.rev acc)
    | ln :: rest -> (
        match parse_line ~source:(Printf.sprintf "%s:%d" source i) ln with
        | Error e -> Error e
        | Ok None -> go acc (i + 1) rest
        | Ok (Some e) -> go (e :: acc) (i + 1) rest)
  in
  go [] 1 lines

let load file =
  match In_channel.with_open_text file In_channel.input_all with
  | contents -> of_string ~source:file contents
  | exception Sys_error e -> Error e

(* Entry paths are repo-relative; diagnostics may carry absolute paths
   (fixture files under a tempdir) or ./-relative ones. Match when the
   diagnostic's path IS the entry path or ends with /<entry path>, so
   [lib/core/proxy.ml] covers [./lib/core/proxy.ml] and
   [/tmp/x/lib/core/proxy.ml] alike. *)
let path_matches ~entry_path file =
  let file = normalize_path file in
  file = entry_path
  ||
  let suf = "/" ^ entry_path in
  let lf = String.length file and ls = String.length suf in
  lf >= ls && String.sub file (lf - ls) ls = suf

let matches e (d : Diagnostic.t) =
  Rule.equal e.rule d.rule
  && path_matches ~entry_path:e.path d.file
  && match e.line with None -> true | Some l -> l = d.line

let suppresses t d = List.exists (fun e -> matches e d) t

let unused t diags =
  List.filter (fun e -> not (List.exists (fun d -> matches e d) diags)) t

let describe_entry e =
  Printf.sprintf "%s %s%s" (Rule.to_string e.rule) e.path
    (match e.line with None -> "" | Some l -> ":" ^ string_of_int l)
