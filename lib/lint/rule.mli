(** Identifiers for the wre-lint rule set. Each rule can be enabled or
    disabled independently from the driver's [--rules] flag. *)

type t =
  | R1  (** secret hygiene *)
  | R2  (** constant-time discipline *)
  | R3  (** determinism *)
  | R4  (** interface coverage *)
  | R5  (** no partial escapes *)
  | R6  (** file-I/O discipline *)
  | R7  (** cross-module secret-taint flow *)
  | R8  (** domain-safety of shared mutable state *)
  | R9  (** durability discipline in lib/store *)

val all : t list
val to_string : t -> string
val of_string : string -> t option
val describe : t -> string

type severity = Error | Warning
(** Reporting metadata only (SARIF [level], JSON [severity]): the CI
    gate fails on any unsuppressed finding regardless of severity. *)

val severity : t -> severity
val severity_string : severity -> string
val equal : t -> t -> bool
