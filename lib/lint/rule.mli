(** Identifiers for the wre-lint rule set. Each rule can be enabled or
    disabled independently from the driver's [--rules] flag. *)

type t =
  | R1  (** secret hygiene *)
  | R2  (** constant-time discipline *)
  | R3  (** determinism *)
  | R4  (** interface coverage *)
  | R5  (** no partial escapes *)
  | R6  (** file-I/O discipline *)

val all : t list
val to_string : t -> string
val of_string : string -> t option
val describe : t -> string
val equal : t -> t -> bool
