type t = {
  salts : int array;
  weights : float array;
  sampler : Stdx.Sampling.Cdf.t option Atomic.t; (* built on first sample *)
}

let make ~salts ~weights = { salts; weights; sampler = Atomic.make None }

let det = make ~salts:[| 0 |] ~weights:[| 1.0 |]

let fixed ~n =
  if n <= 0 then invalid_arg "Salts.fixed: need at least one salt";
  make ~salts:(Array.init n Fun.id) ~weights:(Array.make n (1.0 /. float_of_int n))

let proportional ~total_tags ~prob =
  if total_tags <= 0 then invalid_arg "Salts.proportional: total_tags must be positive";
  if prob <= 0.0 || prob > 1.0 then invalid_arg "Salts.proportional: prob must be in (0,1]";
  let n = max 1 (int_of_float (Float.round (prob *. float_of_int total_tags))) in
  fixed ~n

let poisson ~seed ~lambda ~prob =
  if prob <= 0.0 || prob > 1.0 then invalid_arg "Salts.poisson: prob must be in (0,1]";
  let drbg = Crypto.Drbg.create ~seed in
  let slots =
    Dist.Poisson.process_on_interval ~rate:lambda ~length:prob (Dist.Source.of_drbg drbg)
  in
  let weights = Array.map (fun w -> w /. prob) slots in
  make ~salts:(Array.init (Array.length slots) Fun.id) ~weights

(* The cumulative table is validated and built once per salt set, so
   repeated draws are O(log n) instead of the old
   validate-and-sum-then-scan O(n) on every draw. Concurrent first
   draws may each build the (deterministic, identical) table; the CAS
   publishes one winner and losers use their own copy — no torn reads,
   no lock on the hot path. *)
let sample t g =
  let cdf =
    match Atomic.get t.sampler with
    | Some c -> c
    | None ->
        let c = Stdx.Sampling.Cdf.create t.weights in
        ignore (Atomic.compare_and_set t.sampler None (Some c) : bool);
        c
  in
  t.salts.(Stdx.Sampling.Cdf.sample cdf g)

let validate t =
  let n = Array.length t.salts in
  if n = 0 then Error "empty salt set"
  else if Array.length t.weights <> n then Error "salts/weights length mismatch"
  else begin
    let seen = Hashtbl.create n in
    let dup = Array.exists (fun s ->
        if Hashtbl.mem seen s then true
        else begin
          Hashtbl.replace seen s ();
          false
        end)
        t.salts
    in
    if dup then Error "duplicate salt identifiers"
    else if Array.exists (fun w -> w <= 0.0 || Float.is_nan w) t.weights then
      Error "non-positive weight"
    else begin
      let sum = Array.fold_left ( +. ) 0.0 t.weights in
      if Float.abs (sum -. 1.0) > 1e-9 then
        Error (Printf.sprintf "weights sum to %.12f, expected 1" sum)
      else Ok ()
    end
  end
