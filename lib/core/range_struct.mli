(** Client-side builder of the ESEDS encrypted boundary tree.

    Kerschbaum–Tueno's efficiently searchable range structure, adapted
    to WRE's bucketized range columns (DESIGN.md §5k): the data owner
    takes the equi-depth bucket boundaries a [Range_index] trained,
    builds a balanced binary tree over the buckets, and pseudonymizes
    every node with a PRF under keys only the client holds. The server
    receives the resulting {!Sqldb.Range_tree} node table; a range
    query then ships the O(log B) *canonical cover* roots instead of
    the flat list of per-bucket tags, and the server expands each root
    to the leaf bucket tags it probes against the rtag index.

    Determinism and persistence: construction is a pure function of
    [(master, column, boundaries)] — the same inputs rebuild the same
    node table byte for byte, so the structure needs no storage of its
    own. The store checkpoints boundaries (see [Store.Record.ranges]);
    {!create} on attach restores tags identically, the same contract
    as [Range_index.restore].

    Leakage: leaf tags equal the flat bucket tags by construction, so
    query *results* leak exactly what the flat plan leaks; the wire
    transcript shrinks from O(buckets-in-range) tokens to O(log B)
    cover roots, which is what [Attacks.Range_leakage] measures. *)

type t

type cover = {
  roots : int64 array;  (** canonical-cover node tags, bucket order; [[||]] for an empty range *)
  first_bucket : int;  (** bucket of the lower bound — its rows need client-side edge filtering *)
  last_bucket : int;  (** bucket of the upper bound, inclusive; [< first_bucket] iff empty *)
}

val create : master:Crypto.Keys.master -> column:string -> boundaries:int64 array -> t
(** Deterministic build from checkpointed boundaries (strictly
    increasing, as [Range_index.boundaries] returns them; raises
    [Invalid_argument] otherwise). Leaf bucket tags are derived exactly
    as [Range_index.tag_of_bucket] derives them — traversal output is
    interchangeable with the flat tag list. *)

val of_index : master:Crypto.Keys.master -> column:string -> Range_index.t -> t
(** [create] from a live index's boundaries. *)

val bucket_count : t -> int

val node_count : t -> int
(** [2 * bucket_count - 1] — a full binary tree over the buckets. *)

val depth : t -> int
(** Tree depth in nodes; covers ship at most [2 * (depth - 1)] roots. *)

val tree : t -> Sqldb.Range_tree.t
(** The pseudonymous node table handed to the server. *)

val nodes : t -> Sqldb.Range_tree.node array
(** The raw preorder node table (for persistence round-trip tests). *)

val root_tag : t -> int64
(** Pseudonym of the whole-column node — the cover of an unbounded
    range. *)

val bucket_of : t -> int64 -> int

val cover : t -> lo:int64 option -> hi:int64 option -> cover
(** Canonical cover of the inclusive range [[lo, hi]]; [None] bounds
    are unbounded. Total: inverted ranges yield no roots, unbounded
    ranges yield the root pseudonym. *)

val leaf_tags : t -> cover -> int64 list
(** Client-side expansion of a cover to leaf bucket tags in bucket
    order — equal to [Range_index.tags_for_range] over the same range
    (the qcheck property test_range checks). *)
