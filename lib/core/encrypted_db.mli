(** The encrypted database: WRE deployed on an unmodified SQL engine.

    Mirrors the paper's evaluation setup (§VI-A): each searchable
    column expands into a 64-bit integer search-tag column (indexed by
    the server like any other column) plus an AES-CTR blob column; all
    remaining non-key columns are stored as AES-CTR blobs; the integer
    primary key stays in the clear so [SELECT ID] works. The server
    never runs custom code — searches compile to
    [WHERE col_tag IN (t₁, …, t_k)].

    For the bucketized scheme, server results can contain false
    positives; {!search_rows} filters them client-side after
    decryption, {!search_ids} returns the raw server answer (what the
    false-positive experiments of Figs. 8–9 measure). *)

type t

val create :
  ?fallback:Column_enc.fallback ->
  ?tag_algo:Crypto.Prf.algo ->
  ?tag_index:Sqldb.Table_index.kind ->
  ?range_columns:(string * int) list ->
  ?range_training:(string -> int64 array) ->
  db:Sqldb.Database.t ->
  name:string ->
  plain_schema:Sqldb.Schema.t ->
  key_column:string ->
  encrypted_columns:string list ->
  kind:Scheme.kind ->
  master:Crypto.Keys.master ->
  dist_of:(string -> Dist.Empirical.t) ->
  seed:int64 ->
  unit ->
  t
(** [key_column] must be an INT column of [plain_schema];
    [encrypted_columns] must be TEXT columns. Creates the encrypted
    table and indexes (key + every tag column) inside [db]. [seed]
    drives the weak randomness (salt choice, CTR nonces). [fallback]
    (default [`Reject]) governs inserts of plaintexts outside the
    profiled distribution — see {!Column_enc.fallback}. [tag_algo]
    picks the search-tag PRF backend; [tag_index] the access method
    for the tag columns (default [Btree]; [Hash] suits the random
    integer tags and equality-only workload).

    [range_columns] lists INT columns to support range queries on, with
    their bucket counts (see {!Range_index}); [range_training] must
    then supply each such column's plaintext values for the equi-depth
    histogram (profiled at initialization like [dist_of]). *)

val attach :
  ?fallback:Column_enc.fallback ->
  ?tag_algo:Crypto.Prf.algo ->
  ?range_boundaries:(string * int64 array) list ->
  table:Sqldb.Table.t ->
  plain_schema:Sqldb.Schema.t ->
  key_column:string ->
  encrypted_columns:string list ->
  kind:Scheme.kind ->
  master:Crypto.Keys.master ->
  dist_of:(string -> Dist.Empirical.t) ->
  prng:Stdx.Prng.t ->
  unit ->
  t
(** Re-bind an {e existing} encrypted table — restored from a durable
    checkpoint — to fresh client-side state: encryptors and data keys
    are re-derived from [master], range indexes are rebuilt from their
    checkpointed [range_boundaries] (no plaintext training needed), and
    the weak-randomness stream continues from [prng] (a restored
    {!Stdx.Prng} state), so subsequent inserts produce tags and
    ciphertexts byte-identical to a process that never stopped. The
    table's schema must match the one [create] would derive; raises
    [Invalid_argument] otherwise. *)

val prng : t -> Stdx.Prng.t
(** The database's weak-randomness generator — what a checkpoint
    exports so {!attach} can resume the exact stream. *)

val table : t -> Sqldb.Table.t
val kind : t -> Scheme.kind
val encrypted_columns : t -> string list
val plain_schema : t -> Sqldb.Schema.t
val key_column : t -> string
val column_encryptor : t -> string -> Column_enc.t
val tag_column : string -> string
val data_column : string -> string

val rtag_column : string -> string
(** The bucket-tag INT column a range-indexed column stores next to
    its ciphertext blob. *)

val insert : t -> Sqldb.Value.t array -> int
(** Encrypt a plaintext row (in [plain_schema] order) and insert it. *)

val encrypt_plain_row : t -> Sqldb.Value.t array -> Sqldb.Value.t array
(** Validate and encrypt a plaintext row into encrypted-schema order
    {e without} inserting it — the same work {!insert} does before
    touching the table, drawing weak randomness from the same stream.
    Lets callers stage a batch of replacements and only mutate the
    table once every row has encrypted cleanly (the proxy's atomic
    UPDATE). Raises [Invalid_argument] on schema mismatch and
    {!Column_enc.Unknown_plaintext} under [`Reject]. *)

val insert_batch :
  ?pool:Stdx.Task_pool.t -> ?chunk_size:int -> t -> Sqldb.Value.t array array -> int
(** Batched, optionally multicore ingestion. All rows are validated up
    front, the salt caches are pre-warmed with the batch's distinct
    plaintexts, rows are encrypted (in [chunk_size] chunks, default
    1024), and the encrypted rows are applied to the table in a single
    single-writer pass. Returns the first row id; ids are consecutive
    and in input order.

    Determinism contract: without [pool] (or with a 1-domain pool) the
    weak randomness is drawn from the database PRNG row by row, so the
    resulting table is byte-identical — tags, ciphertexts, row order,
    page layout — to calling {!insert} on each row in sequence. With a
    multi-domain pool each chunk draws from its own PRNG split off the
    database PRNG in chunk order, so the result depends only on the
    PRNG state and [chunk_size], not on the domain count or
    scheduling; decrypted contents and search results always match the
    sequential load. Raises {!Column_enc.Unknown_plaintext} like
    {!insert} (under [`Reject], from whichever chunk hits it first). *)

val encrypted_schema : t -> Sqldb.Schema.t
(** The schema of the encrypted table (for export). *)

val delete_row : t -> int -> bool
(** Tombstone an encrypted row by id (WRE deletes are plain tombstones:
    the stale tags stay in the index until vacuum, which is safe under
    the snapshot model — frequencies only shrink). *)

val insert_encrypted : t -> Sqldb.Value.t array -> int
(** Load an already-encrypted row (in encrypted-schema order) — the
    restore path when re-attaching an exported encrypted table. The
    row is schema-checked but not re-encrypted. *)

val search_ids : t -> column:string -> string -> Sqldb.Executor.result
(** [SELECT ID WHERE col = m], server-side only (index scan over tags;
    may include bucketized false positives). *)

val search_rows : t -> column:string -> string -> Sqldb.Value.t array list * Sqldb.Executor.result
(** [SELECT * WHERE col = m]: fetches rows, decrypts them client-side,
    and (for bucketized schemes) drops false positives. Returns the
    plaintext rows and the raw server-side result. *)

val decrypt_row : t -> Sqldb.Value.t array -> Sqldb.Value.t array
(** Decrypt one encrypted-table row back to [plain_schema] order.
    A pure read of the column keys plus AES-CTR — safe from any
    domain. *)

(* Snapshot reads: freeze an epoch once, serve any number of reader
   domains from it while writers proceed. *)

val freeze : t -> Sqldb.Read_view.t
(** {!Sqldb.Table.freeze} of the underlying encrypted table. *)

val search_ids_view :
  ?pool:Stdx.Task_pool.t ->
  t ->
  view:Sqldb.Read_view.t ->
  column:string ->
  string ->
  Sqldb.Executor.result
(** {!search_ids} against a frozen view; [pool] fans the per-tag index
    probes. Identical answer to {!search_ids} at the same epoch. *)

val search_rows_view :
  ?pool:Stdx.Task_pool.t ->
  t ->
  view:Sqldb.Read_view.t ->
  column:string ->
  string ->
  Sqldb.Value.t array list * Sqldb.Executor.result
(** {!search_rows} against a frozen view; [pool] fans both the index
    probes and the decrypt pass (index-ordered, so the rows come back
    in the exact order the sequential path produces). *)

val search_predicate : t -> column:string -> string -> Sqldb.Predicate.t
(** The WHERE clause a search compiles to (exposed for tests/EXPLAIN). *)

val tags_for : t -> column:string -> string -> int64 list

val support : t -> column:string -> string array
(** The profiled plaintext support of an encrypted column, in the
    distribution's canonical (descending-probability) order — what the
    proxy's join rewrite enumerates to build tag buckets. *)

(* Bucketized range queries (extension; see {!Range_index}). *)

val range_columns : t -> string list
val range_index : t -> string -> Range_index.t

val range_predicate :
  t -> column:string -> lo:int64 option -> hi:int64 option -> Sqldb.Predicate.t
(** The rtag IN-list a range compiles to. *)

val search_range :
  t ->
  column:string ->
  lo:int64 option ->
  hi:int64 option ->
  Sqldb.Value.t array list * Sqldb.Executor.result
(** Decrypted rows truly inside the inclusive range, plus the raw
    server result (a superset: whole buckets). *)

(* ESEDS encrypted boundary trees (extension; see {!Range_struct} and
   DESIGN.md §5k). *)

val range_struct : t -> string -> Range_struct.t
(** The client-side boundary tree of a range column, rebuilt
    deterministically from the column's boundaries on both {!create}
    and {!attach}. Raises for non-range columns. *)

val range_tree : t -> string -> Sqldb.Range_tree.t
(** The pseudonymous node table the server traverses. *)

val range_cover :
  t -> column:string -> lo:int64 option -> hi:int64 option -> Range_struct.cover
(** The O(log B) canonical-cover roots a range query ships instead of
    the flat tag IN-list. *)

val search_range_traverse :
  ?pool:Stdx.Task_pool.t ->
  t ->
  view:Sqldb.Read_view.t ->
  column:string ->
  lo:int64 option ->
  hi:int64 option ->
  Sqldb.Value.t array list * Sqldb.Executor.result
(** {!search_range} through the [Range_traverse] plan over a frozen
    view: ships cover roots, server expands them over the boundary
    tree and probes the rtag index, client filters edge-bucket false
    positives after decryption. Byte-identical rows to {!search_range}
    at any domain count. *)
