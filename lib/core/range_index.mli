(** Bucketized range queries over encrypted numeric columns.

    WRE proper answers equality only. For range predicates the paper
    points at the bucketization line of work (§II: Hore et al. [32,33],
    Wang–Du [49]) rather than order-revealing encryption — ORE's
    leakage is exactly what the rest of the paper is trying to avoid.
    This module implements that classical design as an extension:

    - the data owner builds an equi-depth histogram of the column from
      the profiled plaintext (same trust model as [P_M]);
    - each value is tagged with [F_{k1}(bucket id)] — a deterministic
      tag per bucket, so the server only learns which of ~B buckets a
      row falls in (tunable leakage, like λ);
    - a range query expands to the overlapping buckets' tags; edge
      buckets contribute false positives the client filters after
      decryption, exactly like the bucketized equality scheme.

    Equi-depth buckets make every tag appear with ≈equal frequency, so
    tag counts leak nothing beyond the bucket partition itself. *)

type t

val create :
  master:Crypto.Keys.master -> column:string -> buckets:int -> training:int64 array -> t
(** Build boundaries from an equi-depth histogram of [training] (the
    plaintext column at initialization). [buckets ≥ 1]; fewer distinct
    training values than buckets degrades gracefully. *)

val restore : master:Crypto.Keys.master -> column:string -> boundaries:int64 array -> t
(** Rebuild from checkpointed {!boundaries} (already deduplicated) and
    the same master key — bypasses histogram training, so a reopened
    store tags values identically without the plaintext profile. *)

val bucket_count : t -> int
(** Actual buckets after boundary deduplication. *)

val bucket_of : t -> int64 -> int
val tag_of_value : t -> int64 -> int64
(** The search tag stored next to the value's AES ciphertext. *)

val tags_for_range : t -> lo:int64 option -> hi:int64 option -> int64 list
(** Tags of every bucket overlapping the inclusive range. *)

val boundaries : t -> int64 array
(** Upper bounds (inclusive) of each bucket except the last, which is
    unbounded. Exposed for tests. *)
