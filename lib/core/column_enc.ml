(* lint: guarded-by lock *)
exception Unknown_plaintext of string

type fallback = [ `Reject | `Min_frequency ]

(* Salt sets are cached per plaintext; the full tag list is only
   materialized for *searched* plaintexts (search_cache). Encryption
   computes just the sampled salt's tag — under Fixed-1000 on a
   near-unique column, eagerly tagging every salt of every value would
   mean 10^8 PRF calls for tags no query ever asks for. *)
type cached = { salts : Salts.t; alias : Stdx.Sampling.Alias.t }

(* Cache effectiveness across every column encryptor: a miss means a
   full salt-set computation (DRBG stream + alias table); encryption at
   10M-row scale must be nearly all hits. *)
let m_salt_hits = Obs.Metrics.counter "column_enc.salt_cache_hits_total"
let m_salt_misses = Obs.Metrics.counter "column_enc.salt_cache_misses_total"

type t = {
  column : string;
  kind : Scheme.kind;
  dist : Dist.Empirical.t;
  fallback : fallback;
  prf : Crypto.Prf.key;
  data_key : Crypto.Ctr.key;
  master : Crypto.Keys.master;
  layout : Bucket_layout.t option;
  cache : (string, cached option) Hashtbl.t;
  search_cache : (string, int64 list) Hashtbl.t;
  (* Guards both caches: snapshot readers on several domains rewrite
     queries (and may fault in salt sets) concurrently. Salt/tag
     computation is deterministic, so holding the lock across a miss
     only serializes cold-cache work. *)
  lock : Mutex.t;
}

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let create ?(fallback = `Reject) ?tag_algo ~master ~column ~kind ~dist () =
  let layout =
    match kind with
    | Scheme.Bucketized lambda ->
        Some
          (Bucket_layout.create
             ~seed:(Crypto.Keys.salt_seed master ~column ~context:"bucketized")
             ~shuffle_key:(Crypto.Keys.shuffle_key master ~column)
             ~column ~dist ~lambda)
    | Scheme.Det | Scheme.Fixed _ | Scheme.Proportional _ | Scheme.Poisson _ -> None
  in
  {
    column;
    kind;
    dist;
    fallback;
    prf = Crypto.Keys.prf_key ?algo:tag_algo master ~column;
    data_key = Crypto.Keys.data_key master ~column;
    master;
    layout;
    cache = Hashtbl.create 256;
    search_cache = Hashtbl.create 64;
    lock = Mutex.create ();
  }

let column t = t.column
let kind t = t.kind
let dist t = t.dist
let bucket_layout t = t.layout

(* Salt set for a plaintext outside the profiled support, under the
   [`Min_frequency] update policy. *)
let fallback_salts t m =
  let tau = Dist.Empirical.min_prob t.dist in
  match t.kind with
  | Scheme.Det -> Some Salts.det
  | Scheme.Fixed n -> Some (Salts.fixed ~n)
  | Scheme.Proportional _ -> Some Salts.det
  | Scheme.Poisson lambda ->
      let seed = Crypto.Keys.salt_seed t.master ~column:t.column ~context:("msg:" ^ m) in
      Some (Salts.poisson ~seed ~lambda ~prob:tau)
  | Scheme.Bucketized _ ->
      let layout = Option.get t.layout in
      let n = Bucket_layout.bucket_count layout in
      let drbg =
        Crypto.Drbg.create
          ~seed:(Crypto.Keys.salt_seed t.master ~column:t.column ~context:("fallback:" ^ m))
      in
      Some (Salts.make ~salts:[| Crypto.Drbg.int drbg n |] ~weights:[| 1.0 |])

let compute_salts t m =
  let with_fallback = function
    | Some s -> Some s
    | None -> (match t.fallback with `Reject -> None | `Min_frequency -> fallback_salts t m)
  in
  match t.kind with
  | Scheme.Det -> Some Salts.det
  | Scheme.Fixed n -> Some (Salts.fixed ~n)
  | Scheme.Proportional total_tags ->
      let p = Dist.Empirical.prob t.dist m in
      with_fallback (if p <= 0.0 then None else Some (Salts.proportional ~total_tags ~prob:p))
  | Scheme.Poisson lambda ->
      let p = Dist.Empirical.prob t.dist m in
      with_fallback
        (if p <= 0.0 then None
         else
           let seed = Crypto.Keys.salt_seed t.master ~column:t.column ~context:("msg:" ^ m) in
           Some (Salts.poisson ~seed ~lambda ~prob:p))
  | Scheme.Bucketized _ -> with_fallback (Bucket_layout.salts_for (Option.get t.layout) m)

let tag_of_salt t m salt =
  if Scheme.is_bucketized t.kind then Crypto.Prf.tag_salt_only t.prf ~salt
  else Crypto.Prf.tag t.prf ~salt ~message:m

let cached_unlocked t m =
  match Hashtbl.find_opt t.cache m with
  | Some c ->
      Obs.Metrics.incr m_salt_hits;
      c
  | None ->
      Obs.Metrics.incr m_salt_misses;
      let c =
        Option.map
          (fun salts -> { salts; alias = Stdx.Sampling.Alias.create salts.Salts.weights })
          (compute_salts t m)
      in
      Hashtbl.replace t.cache m c;
      c

let cached t m = with_lock t (fun () -> cached_unlocked t m)

let salt_set t m = Option.map (fun c -> c.salts) (cached t m)

(* Populate the salt cache for every given plaintext on the calling
   domain. After this, [encrypt] for those plaintexts only *reads* the
   cache — the property the parallel ingestion pipeline relies on to
   share one encryptor across worker domains without locking. *)
let prewarm t ms =
  with_lock t (fun () -> List.iter (fun m -> ignore (cached_unlocked t m : cached option)) ms)

let encrypt t g m =
  match cached t m with
  | None -> raise (Unknown_plaintext m)
  | Some c ->
      let i = Stdx.Sampling.Alias.sample c.alias g in
      (tag_of_salt t m c.salts.Salts.salts.(i), Crypto.Ctr.encrypt_random t.data_key g m)

let search_tags t m =
  with_lock t @@ fun () ->
  match Hashtbl.find_opt t.search_cache m with
  | Some tags -> tags
  | None ->
      let tags =
        match cached_unlocked t m with
        | None -> []
        | Some c ->
            (* The same tag can appear twice only if the PRF collides on
               two salts; dedup so the SQL IN-list stays minimal. *)
            List.sort_uniq Int64.compare
              (Array.to_list (Array.map (tag_of_salt t m) c.salts.Salts.salts))
      in
      Hashtbl.replace t.search_cache m tags;
      tags

let decrypt t ct = Crypto.Ctr.decrypt t.data_key ct
