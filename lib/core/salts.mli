(** Per-plaintext salt sets: the getSalts subroutine of paper Fig. 1.

    A salt set is the list of salt identifiers a plaintext may be
    encrypted under, together with the probability of choosing each
    ([P_S]). For a fixed key and plaintext the set is deterministic —
    both the encryptor and the search-query builder recompute it — so
    all pseudo-randomness is drawn from an HMAC-DRBG seeded by the
    caller (derived from master key k1).

    This module implements the per-message allocators (Det, Fixed,
    Proportional, Poisson/Algorithm 1); the global Bucketized allocator
    lives in {!Bucket_layout}. *)

type t = private {
  salts : int array;  (** salt identifiers, distinct *)
  weights : float array;  (** [P_S]: same length, sums to 1 *)
  sampler : Stdx.Sampling.Cdf.t option Atomic.t;
      (** memoized cumulative table; built lazily by {!sample} *)
}

val make : salts:int array -> weights:float array -> t
(** Assemble a salt set without checking the invariants ({!validate}
    does that); the sampler cache starts empty. *)

val det : t
(** The single salt 0 with probability 1. *)

val fixed : n:int -> t
(** [n] salts, uniform. *)

val proportional : total_tags:int -> prob:float -> t
(** ⌈/round⌉ [prob · total_tags] salts (at least 1), uniform — the
    frequency-smoothing allocation of §V-B, with its integer-rounding
    aliasing problem intact (exercised by the aliasing ablation). *)

val poisson : seed:string -> lambda:float -> prob:float -> t
(** Algorithm 1: interarrivals of a rate-λ Poisson process on
    [\[0, prob\]], normalized to weights. Deterministic in [seed]. *)

val sample : t -> Stdx.Prng.t -> int
(** Draw a salt according to the weights (the weak randomness consumed
    at encryption time). O(log n) per draw: the cumulative table is
    validated and built once, on the first draw, not re-summed every
    time. Safe under concurrent first draws: the table is published
    with a CAS and the build is deterministic. *)

val validate : t -> (unit, string) result
(** Invariant check used by tests and fuzzing: distinct salts, positive
    weights summing to 1 (±1e-9). *)
