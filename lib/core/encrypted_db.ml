(* lint: guarded-by Table.writer (encryptor/key tables immutable on the snapshot-read path) *)
open Sqldb

let tag_column c = c ^ "_tag"
let data_column c = c ^ "_data"
let rtag_column c = c ^ "_rtag"

(* Row-level crypto counters (atomic bumps, nothing allocated per row)
   plus the per-phase latency histograms of the read path. The same
   query.* histograms are fed by the proxy's SELECT path, so one
   registry covers both entry points. *)
let m_rows_encrypted = Obs.Metrics.counter "edb.rows_encrypted_total"
let m_rows_decrypted = Obs.Metrics.counter "edb.rows_decrypted_total"
let h_rewrite = Obs.Metrics.histogram "query.rewrite_ns"
let h_exec = Obs.Metrics.histogram "query.exec_ns"
let h_decrypt = Obs.Metrics.histogram "query.decrypt_ns"
let h_filter = Obs.Metrics.histogram "query.filter_ns"

(* One query phase: latency histogram + trace span under one name. *)
let phase h name f = Obs.Metrics.time h (fun () -> Obs.Trace.with_span name f)

type t = {
  table : Table.t;
  plain_schema : Schema.t;
  key_column : string;
  kind : Scheme.kind;
  encrypted_columns : string list;
  encryptors : (string, Column_enc.t) Hashtbl.t;
  data_keys : (string, Crypto.Ctr.key) Hashtbl.t; (* non-searchable columns *)
  g : Stdx.Prng.t;
  range_indexes : (string, Range_index.t) Hashtbl.t;
  range_structs : (string, Range_struct.t) Hashtbl.t;
  (* Plain-column position -> encrypted-table position maps, built once. *)
  enc_schema : Schema.t;
  plain_to_enc :
    [ `Key of int | `Data of int | `Searchable of int * int | `Ranged of int * int ] array;
}

(* Column validation + encrypted-schema layout, shared by {!create}
   (fresh table) and {!attach} (table restored from a checkpoint).
   [ctx] only flavors error messages. *)
let enc_layout ~ctx ~plain_schema ~key_column ~encrypted_columns ~range_names =
  let key_pos =
    match Schema.column_index_opt plain_schema key_column with
    | Some i -> i
    | None -> invalid_arg (Printf.sprintf "%s: unknown key column %S" ctx key_column)
  in
  (match (Schema.columns plain_schema).(key_pos).ty with
  | Value.TInt -> ()
  | _ -> invalid_arg (ctx ^ ": key column must be INT"));
  let is_searchable c = List.mem c encrypted_columns in
  List.iter
    (fun c ->
      match Schema.column_index_opt plain_schema c with
      | None -> invalid_arg (Printf.sprintf "%s: unknown column %S" ctx c)
      | Some i ->
          if (Schema.columns plain_schema).(i).ty <> Value.TText then
            invalid_arg (Printf.sprintf "%s: column %S must be TEXT" ctx c))
    encrypted_columns;
  List.iter
    (fun c ->
      match Schema.column_index_opt plain_schema c with
      | None -> invalid_arg (Printf.sprintf "%s: unknown range column %S" ctx c)
      | Some i ->
          if (Schema.columns plain_schema).(i).ty <> Value.TInt then
            invalid_arg (Printf.sprintf "%s: range column %S must be INT" ctx c);
          if is_searchable c || c = key_column then
            invalid_arg (Printf.sprintf "%s: column %S cannot be both" ctx c))
    range_names;
  (* Encrypted schema: key passthrough; every other plain column gets a
     _data blob; searchable columns additionally get a _tag int;
     range-indexed INT columns get a _rtag int (bucket tag). *)
  let plain_cols = Schema.columns plain_schema in
  let enc_cols = ref [] and mapping = Array.make (Array.length plain_cols) (`Key 0) in
  let pos = ref 0 in
  let add col =
    enc_cols := col :: !enc_cols;
    let p = !pos in
    incr pos;
    p
  in
  Array.iteri
    (fun i (col : Schema.column) ->
      if i = key_pos then
        mapping.(i) <- `Key (add { Schema.name = col.name; ty = Value.TInt; nullable = false })
      else if is_searchable col.name then begin
        let tag_pos = add { Schema.name = tag_column col.name; ty = Value.TInt; nullable = false } in
        let data_pos =
          add { Schema.name = data_column col.name; ty = Value.TBlob; nullable = false }
        in
        mapping.(i) <- `Searchable (tag_pos, data_pos)
      end
      else if List.mem col.name range_names then begin
        let rtag_pos =
          add { Schema.name = col.name ^ "_rtag"; ty = Value.TInt; nullable = false }
        in
        let data_pos =
          add { Schema.name = data_column col.name; ty = Value.TBlob; nullable = false }
        in
        mapping.(i) <- `Ranged (rtag_pos, data_pos)
      end
      else
        mapping.(i) <-
          `Data (add { Schema.name = data_column col.name; ty = Value.TBlob; nullable = false }))
    plain_cols;
  (Schema.create (List.rev !enc_cols), mapping)

let build_encryptors ~fallback ?tag_algo ~master ~kind ~dist_of encrypted_columns =
  let encryptors = Hashtbl.create (List.length encrypted_columns) in
  List.iter
    (fun c ->
      Hashtbl.replace encryptors c
        (Column_enc.create ~fallback ?tag_algo ~master ~column:c ~kind ~dist:(dist_of c) ()))
    encrypted_columns;
  encryptors

(* The ESEDS boundary trees are a pure function of (master, column,
   boundaries) — see {!Range_struct} — so both {!create} and {!attach}
   derive them from whatever range indexes they just built; no extra
   persistence beyond the checkpointed boundaries. *)
let build_range_structs ~master range_indexes =
  let structs = Hashtbl.create (Hashtbl.length range_indexes) in
  Hashtbl.iter
    (fun c ri -> Hashtbl.replace structs c (Range_struct.of_index ~master ~column:c ri))
    range_indexes;
  structs

let build_data_keys ~plain_schema ~key_column ~encrypted_columns ~master =
  let data_keys = Hashtbl.create 16 in
  Array.iter
    (fun (col : Schema.column) ->
      if col.name <> key_column && not (List.mem col.name encrypted_columns) then
        Hashtbl.replace data_keys col.name (Crypto.Keys.data_key master ~column:col.name))
    (Schema.columns plain_schema);
  data_keys

let create ?(fallback = `Reject) ?tag_algo ?(tag_index = Table_index.Btree)
    ?(range_columns = []) ?range_training ~db ~name ~plain_schema ~key_column ~encrypted_columns
    ~kind ~master ~dist_of ~seed () =
  List.iter
    (fun (_, buckets) ->
      if buckets < 1 then invalid_arg "Encrypted_db.create: range buckets must be positive")
    range_columns;
  let enc_schema, mapping =
    enc_layout ~ctx:"Encrypted_db.create" ~plain_schema ~key_column ~encrypted_columns
      ~range_names:(List.map fst range_columns)
  in
  let table = Database.create_table db ~name ~schema:enc_schema in
  ignore (Table.create_index table ~column:key_column);
  List.iter
    (fun c -> ignore (Table.create_index ~kind:tag_index table ~column:(tag_column c)))
    encrypted_columns;
  List.iter
    (fun (c, _) -> ignore (Table.create_index table ~column:(c ^ "_rtag")))
    range_columns;
  let range_indexes = Hashtbl.create (List.length range_columns) in
  List.iter
    (fun (c, buckets) ->
      let training =
        match range_training with
        | Some f -> f c
        | None ->
            invalid_arg "Encrypted_db.create: range_columns requires range_training"
      in
      Hashtbl.replace range_indexes c (Range_index.create ~master ~column:c ~buckets ~training))
    range_columns;
  {
    table;
    plain_schema;
    key_column;
    kind;
    encrypted_columns;
    encryptors = build_encryptors ~fallback ?tag_algo ~master ~kind ~dist_of encrypted_columns;
    data_keys = build_data_keys ~plain_schema ~key_column ~encrypted_columns ~master;
    g = Stdx.Prng.create seed;
    range_indexes;
    range_structs = build_range_structs ~master range_indexes;
    enc_schema;
    plain_to_enc = mapping;
  }

let attach ?(fallback = `Reject) ?tag_algo ?(range_boundaries = []) ~table ~plain_schema
    ~key_column ~encrypted_columns ~kind ~master ~dist_of ~prng () =
  let enc_schema, mapping =
    enc_layout ~ctx:"Encrypted_db.attach" ~plain_schema ~key_column ~encrypted_columns
      ~range_names:(List.map fst range_boundaries)
  in
  if Schema.columns (Table.schema table) <> Schema.columns enc_schema then
    invalid_arg
      (Printf.sprintf "Encrypted_db.attach: table %S does not match the derived encrypted schema"
         (Table.name table));
  let range_indexes = Hashtbl.create (List.length range_boundaries) in
  List.iter
    (fun (c, boundaries) ->
      Hashtbl.replace range_indexes c (Range_index.restore ~master ~column:c ~boundaries))
    range_boundaries;
  {
    table;
    plain_schema;
    key_column;
    kind;
    encrypted_columns;
    encryptors = build_encryptors ~fallback ?tag_algo ~master ~kind ~dist_of encrypted_columns;
    data_keys = build_data_keys ~plain_schema ~key_column ~encrypted_columns ~master;
    g = prng;
    range_indexes;
    range_structs = build_range_structs ~master range_indexes;
    enc_schema;
    plain_to_enc = mapping;
  }

let prng t = t.g

let table t = t.table
let kind t = t.kind
let encrypted_columns t = t.encrypted_columns
let plain_schema t = t.plain_schema
let key_column t = t.key_column

let column_encryptor t c =
  match Hashtbl.find_opt t.encryptors c with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Encrypted_db: column %S is not searchable" c)

let plain_text_of v =
  match v with
  | Value.Text s -> s
  | _ -> invalid_arg "Encrypted_db: searchable column value must be TEXT"

(* Encrypt one plaintext row into encrypted-schema order, drawing weak
   randomness (salt choice, CTR nonces) from [g]. Reads the encryptor
   caches but never writes them when every searchable value has been
   prewarmed — which makes this safe to call from worker domains, one
   PRNG per domain of work. *)
let encrypt_row t g row =
  let out = Array.make (Schema.arity t.enc_schema) Value.Null in
  let plain_cols = Schema.columns t.plain_schema in
  Array.iteri
    (fun i v ->
      match t.plain_to_enc.(i) with
      | `Key p -> out.(p) <- v
      | `Searchable (tag_pos, data_pos) ->
          let enc = Hashtbl.find t.encryptors plain_cols.(i).name in
          let tag, ct = Column_enc.encrypt enc g (plain_text_of v) in
          out.(tag_pos) <- Value.Int tag;
          out.(data_pos) <- Value.Blob ct
      | `Ranged (rtag_pos, data_pos) ->
          let ri = Hashtbl.find t.range_indexes plain_cols.(i).name in
          let key = Hashtbl.find t.data_keys plain_cols.(i).name in
          let raw =
            match v with
            | Value.Int x -> x
            | v ->
                invalid_arg
                  ("Encrypted_db.insert: range-indexed column must be INT, got "
                  ^ Value.to_string v)
          in
          out.(rtag_pos) <- Value.Int (Range_index.tag_of_value ri raw);
          out.(data_pos) <- Value.Blob (Crypto.Ctr.encrypt_random key g (Value_codec.encode v))
      | `Data p ->
          let key = Hashtbl.find t.data_keys plain_cols.(i).name in
          out.(p) <- Value.Blob (Crypto.Ctr.encrypt_random key g (Value_codec.encode v)))
    row;
  Obs.Metrics.incr m_rows_encrypted;
  out

let encrypt_plain_row t row =
  (match Schema.validate_row t.plain_schema row with
  | Ok () -> ()
  | Error e -> invalid_arg ("Encrypted_db.insert: " ^ e));
  encrypt_row t t.g row

let insert t row = Table.insert t.table (encrypt_plain_row t row)

let default_chunk_size = 1024

let insert_batch ?pool ?(chunk_size = default_chunk_size) t rows =
  if chunk_size <= 0 then invalid_arg "Encrypted_db.insert_batch: chunk_size must be positive";
  Array.iteri
    (fun i row ->
      match Schema.validate_row t.plain_schema row with
      | Ok () -> ()
      | Error e -> invalid_arg (Printf.sprintf "Encrypted_db.insert_batch: row %d: %s" i e))
    rows;
  (* Pre-warm every searchable column's salt cache with the batch's
     distinct plaintexts, on this domain: salt-set computation (DRBG
     streams, alias tables) runs once per distinct value instead of
     racing per row, and the parallel phase below becomes read-only on
     the encryptors. One pass over the batch collects all columns'
     distinct sets at once — per-column passes re-walk a 10M-row batch
     once per searchable column. *)
  let warm =
    List.map
      (fun c ->
        ( Schema.column_index t.plain_schema c,
          Hashtbl.create 256,
          Hashtbl.find t.encryptors c ))
      t.encrypted_columns
  in
  Array.iter
    (fun row ->
      List.iter
        (fun (pos, distinct, _) ->
          let m = plain_text_of row.(pos) in
          if not (Hashtbl.mem distinct m) then Hashtbl.replace distinct m ())
        warm)
    rows;
  List.iter
    (fun (_, distinct, enc) ->
      Column_enc.prewarm enc (Hashtbl.fold (fun m () acc -> m :: acc) distinct []))
    warm;
  let n = Array.length rows in
  let encrypted =
    match pool with
    | None -> Array.map (fun row -> encrypt_row t t.g row) rows
    | Some pool when Stdx.Task_pool.domains pool <= 1 || n = 0 ->
        (* Single-domain path: draw from the database PRNG row by row,
           in order — byte-identical to sequential {!insert}. *)
        Array.map (fun row -> encrypt_row t t.g row) rows
    | Some pool ->
        (* Multi-domain path: one PRNG per chunk, split off the
           database PRNG in chunk order. The output depends only on
           the PRNG state and the chunk size — not on the domain
           count or scheduling — so a load is reproducible for a
           fixed (seed, chunk_size). *)
        let n_chunks = (n + chunk_size - 1) / chunk_size in
        let gs = Array.init n_chunks (fun _ -> Stdx.Prng.split t.g) in
        let chunks =
          Stdx.Task_pool.parallel_init pool n_chunks (fun ci ->
              let g = gs.(ci) in
              let lo = ci * chunk_size in
              let len = min chunk_size (n - lo) in
              Array.init len (fun j -> encrypt_row t g rows.(lo + j)))
        in
        Array.concat (Array.to_list chunks)
  in
  Table.insert_batch t.table encrypted

let encrypted_schema t = t.enc_schema

let insert_encrypted t row = Table.insert t.table row

let delete_row t id = Table.delete t.table id

let tags_for t ~column m = Column_enc.search_tags (column_encryptor t column) m

(* The column's profiled plaintext support, in the distribution's
   canonical (descending-probability) order — what the join rewrite
   enumerates to build per-plaintext tag buckets. *)
let support t ~column = Dist.Empirical.support (Column_enc.dist (column_encryptor t column))

let search_predicate t ~column m =
  let tags = tags_for t ~column m in
  Predicate.In (tag_column column, List.map (fun tag -> Value.Int tag) tags)

let search_ids t ~column m =
  Obs.Trace.with_span "edb.search_ids" @@ fun () ->
  let pred = phase h_rewrite "query.rewrite" (fun () -> search_predicate t ~column m) in
  phase h_exec "query.exec" (fun () -> Executor.run t.table ~projection:Executor.Row_ids pred)

let freeze t = Table.freeze t.table

let search_ids_view ?pool t ~view ~column m =
  Obs.Trace.with_span "edb.search_ids" @@ fun () ->
  let pred = phase h_rewrite "query.rewrite" (fun () -> search_predicate t ~column m) in
  phase h_exec "query.exec" (fun () ->
      Executor.run_view ?pool view ~projection:Executor.Row_ids pred)

let range_index t column =
  match Hashtbl.find_opt t.range_indexes column with
  | Some ri -> ri
  | None -> invalid_arg (Printf.sprintf "Encrypted_db: column %S is not range-indexed" column)

let range_columns t = Hashtbl.fold (fun c _ acc -> c :: acc) t.range_indexes []

let range_predicate t ~column ~lo ~hi =
  let tags = Range_index.tags_for_range (range_index t column) ~lo ~hi in
  Predicate.In (rtag_column column, List.map (fun tag -> Value.Int tag) tags)

let range_struct t column =
  match Hashtbl.find_opt t.range_structs column with
  | Some rs -> rs
  | None -> invalid_arg (Printf.sprintf "Encrypted_db: column %S is not range-indexed" column)

let range_tree t column = Range_struct.tree (range_struct t column)
let range_cover t ~column ~lo ~hi = Range_struct.cover (range_struct t column) ~lo ~hi

let decrypt_row t enc_row =
  let plain_cols = Schema.columns t.plain_schema in
  Array.mapi
    (fun i (col : Schema.column) ->
      match t.plain_to_enc.(i) with
      | `Key p -> enc_row.(p)
      | `Searchable (_, data_pos) -> begin
          let enc = Hashtbl.find t.encryptors col.name in
          match enc_row.(data_pos) with
          | Value.Blob ct -> Value.Text (Column_enc.decrypt enc ct)
          | v -> invalid_arg ("Encrypted_db.decrypt_row: expected blob, got " ^ Value.to_string v)
        end
      | `Data p | `Ranged (_, p) -> begin
          let key = Hashtbl.find t.data_keys col.name in
          match enc_row.(p) with
          | Value.Blob ct -> Value_codec.decode_exn (Crypto.Ctr.decrypt key ct)
          | v -> invalid_arg ("Encrypted_db.decrypt_row: expected blob, got " ^ Value.to_string v)
        end)
    plain_cols

let decrypt_row t enc_row =
  let row = decrypt_row t enc_row in
  Obs.Metrics.incr m_rows_decrypted;
  row

(* Back half of a row search, shared by the live-table and snapshot
   paths: decrypt every returned row (optionally fanned over a pool —
   decryption is a pure read of the encryptor tables plus AES-CTR, and
   [Task_pool.map_array] keeps results index-ordered, so the output is
   identical to the sequential map), then the bucketized client-side
   false-positive filter. *)
let decrypt_and_filter ?pool t ~column m (result : Executor.result) =
  let col_pos = Schema.column_index t.plain_schema column in
  let decrypted =
    phase h_decrypt "query.decrypt" (fun () ->
        Array.to_list (Stdx.Task_pool.map_array ?pool result.rows (decrypt_row t)))
  in
  let rows =
    phase h_filter "query.filter" (fun () ->
        if Scheme.is_bucketized t.kind then
          (* Client-side false-positive filter (paper §V-C1). Compares a
             decrypted plaintext against the query value, so it runs
             constant-time like every other match on secret data. *)
          List.filter
            (fun row ->
              match row.(col_pos) with
              | Value.Text s -> Stdx.Bytes_util.ct_equal s m
              | _ -> false)
            decrypted
        else decrypted)
  in
  (rows, result)

let search_rows t ~column m =
  Obs.Trace.with_span "edb.search_rows" @@ fun () ->
  let pred = phase h_rewrite "query.rewrite" (fun () -> search_predicate t ~column m) in
  let result =
    phase h_exec "query.exec" (fun () ->
        Executor.run t.table ~projection:Executor.All_columns pred)
  in
  decrypt_and_filter t ~column m result

let search_rows_view ?pool t ~view ~column m =
  Obs.Trace.with_span "edb.search_rows" @@ fun () ->
  let pred = phase h_rewrite "query.rewrite" (fun () -> search_predicate t ~column m) in
  let result =
    phase h_exec "query.exec" (fun () ->
        Executor.run_view ?pool view ~projection:Executor.All_columns pred)
  in
  decrypt_and_filter ?pool t ~column m result

(* Back half of a range search, shared by the flat and traversal
   plans: decrypt the server's bucket superset and keep the rows truly
   inside the inclusive range (edge-bucket false positives drop out). *)
let decrypt_in_range t ~column ~lo ~hi (result : Executor.result) =
  let col_pos = Schema.column_index t.plain_schema column in
  let in_range v =
    match v with
    | Value.Int x ->
        (match lo with None -> true | Some l -> Int64.compare x l >= 0)
        && (match hi with None -> true | Some h -> Int64.compare x h <= 0)
    | _ -> false
  in
  let decrypted =
    phase h_decrypt "query.decrypt" (fun () ->
        Array.to_list (Array.map (decrypt_row t) result.rows))
  in
  let rows =
    phase h_filter "query.filter" (fun () ->
        List.filter (fun row -> in_range row.(col_pos)) decrypted)
  in
  (rows, result)

(* Range search over a bucketized INT column: server returns every row
   in the overlapping buckets; the client decrypts and keeps the rows
   actually inside the range (edge-bucket false positives drop out). *)
let search_range t ~column ~lo ~hi =
  Obs.Trace.with_span "edb.search_range" @@ fun () ->
  let pred = phase h_rewrite "query.rewrite" (fun () -> range_predicate t ~column ~lo ~hi) in
  let result =
    phase h_exec "query.exec" (fun () ->
        Executor.run t.table ~projection:Executor.All_columns pred)
  in
  decrypt_in_range t ~column ~lo ~hi result

(* Same query through the ESEDS plan: ship the O(log B) canonical-cover
   roots, let the server expand them over the boundary tree (DESIGN.md
   §5k). The server predicate passed for the candidate re-check is the
   flat rtag IN-list — traversal leaves equal the flat tags by
   construction, so both plans return byte-identical results. *)
let search_range_traverse ?pool t ~view ~column ~lo ~hi =
  Obs.Trace.with_span "edb.search_range_traverse" @@ fun () ->
  let rs = range_struct t column in
  let cover, pred =
    phase h_rewrite "query.rewrite" (fun () ->
        (Range_struct.cover rs ~lo ~hi, range_predicate t ~column ~lo ~hi))
  in
  let result =
    phase h_exec "query.exec" (fun () ->
        Executor.run_traverse ?pool view ~tree:(Range_struct.tree rs)
          ~tag_column:(rtag_column column) ~roots:cover.Range_struct.roots
          ~projection:Executor.All_columns pred)
  in
  decrypt_in_range t ~column ~lo ~hi result
