type t = {
  boundaries : int64 array; (* bucket i covers (boundaries.(i-1), boundaries.(i)]; last bucket unbounded *)
  prf : Crypto.Prf.key;
}

let create ~master ~column ~buckets ~training =
  if buckets < 1 then invalid_arg "Range_index.create: need at least one bucket";
  if Array.length training = 0 then invalid_arg "Range_index.create: empty training data";
  let sorted = Array.copy training in
  Array.sort Int64.compare sorted;
  let n = Array.length sorted in
  (* Equi-depth: boundary i at the (i+1)/buckets quantile; dedup so
     heavily repeated values collapse into one bucket. *)
  let raw =
    Array.init (max 0 (buckets - 1)) (fun i -> sorted.((i + 1) * n / buckets |> min (n - 1)))
  in
  let dedup = Stdx.Vec.create () in
  Array.iter
    (fun b ->
      if Stdx.Vec.is_empty dedup || Stdx.Vec.get dedup (Stdx.Vec.length dedup - 1) <> b then
        Stdx.Vec.push dedup b)
    raw;
  {
    boundaries = Stdx.Vec.to_array dedup;
    prf = Crypto.Keys.prf_key master ~column:(column ^ "/range");
  }

let restore ~master ~column ~boundaries =
  { boundaries = Array.copy boundaries; prf = Crypto.Keys.prf_key master ~column:(column ^ "/range") }

let bucket_count t = Array.length t.boundaries + 1
let boundaries t = Array.copy t.boundaries

(* First bucket whose upper bound is >= v; the last bucket catches the
   rest. *)
let bucket_of t v =
  let lo = ref 0 and hi = ref (Array.length t.boundaries) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Int64.compare t.boundaries.(mid) v < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let tag_of_bucket t b = Crypto.Prf.tag_salt_only t.prf ~salt:b

let tag_of_value t v = tag_of_bucket t (bucket_of t v)

let tags_for_range t ~lo ~hi =
  let first = match lo with None -> 0 | Some v -> bucket_of t v in
  let last = match hi with None -> bucket_count t - 1 | Some v -> bucket_of t v in
  if last < first then []
  else List.init (last - first + 1) (fun i -> tag_of_bucket t (first + i))
