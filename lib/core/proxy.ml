(* lint: guarded-by construction (by_name filled in create_multi, read-only afterwards) *)
open Sqldb

(* Multi-table registry: one encrypted table per plaintext logical
   name. Single-table statements resolve by the statement's FROM name,
   falling back to the sole table when only one is registered (the
   legacy single-table proxy accepted any spelling); joins resolve both
   names exactly. *)
type t = { default : Encrypted_db.t; by_name : (string, Encrypted_db.t) Hashtbl.t }

let table_name edb = Table.name (Encrypted_db.table edb)

let create_multi = function
  | [] -> invalid_arg "Proxy.create_multi: at least one encrypted table required"
  | e :: _ as es ->
      let by_name = Hashtbl.create 8 in
      List.iter
        (fun e ->
          let n = table_name e in
          if Hashtbl.mem by_name n then
            invalid_arg (Printf.sprintf "Proxy.create_multi: duplicate table %S" n);
          Hashtbl.replace by_name n e)
        es;
      { default = e; by_name }

let create edb = create_multi [ edb ]

let edb_for t name =
  match Hashtbl.find_opt t.by_name name with
  | Some e -> Some e
  | None -> if Hashtbl.length t.by_name = 1 then Some t.default else None

let edb_exact t name = Hashtbl.find_opt t.by_name name

type rewritten = {
  server_sql : string;
  server_predicate : Predicate.t;
  residual : Predicate.t;
}

type query_result = {
  columns : string list;
  rows : Value.t array list;
  affected : int;
  server_rows : int;
  exec : Executor.result option;
  join_exec : Join.result option;
}

(* Statement mix plus the per-phase latency breakdown of the full
   round-trip (parse -> rewrite -> server exec -> decrypt -> residual
   filter). The query.* histograms are shared with [Encrypted_db]'s
   search entry points — both paths measure the same pipeline. *)
let m_select = Obs.Metrics.counter "proxy.select_total"
let m_join = Obs.Metrics.counter "proxy.join_total"
let m_insert = Obs.Metrics.counter "proxy.insert_total"
let m_update = Obs.Metrics.counter "proxy.update_total"
let m_delete = Obs.Metrics.counter "proxy.delete_total"
let m_full_scan = Obs.Metrics.counter "proxy.full_scan_total"
let m_range_traverse = Obs.Metrics.counter "proxy.range_traverse_total"
let m_range_flat = Obs.Metrics.counter "proxy.range_flat_total"
let m_edge_fp = Obs.Metrics.counter "range.edge_fp_rows_total"
let m_pairs_verified = Obs.Metrics.counter "join.pairs_verified_total"
let h_parse = Obs.Metrics.histogram "query.parse_ns"
let h_rewrite = Obs.Metrics.histogram "query.rewrite_ns"
let h_exec = Obs.Metrics.histogram "query.exec_ns"
let h_decrypt = Obs.Metrics.histogram "query.decrypt_ns"
let h_filter = Obs.Metrics.histogram "query.filter_ns"

let phase h name f = Obs.Metrics.time h (fun () -> Obs.Trace.with_span name f)

(* Compact nested True/And noise for readable server SQL. *)
let rec simplify = function
  | Predicate.And ps ->
      let ps = List.filter (fun p -> p <> Predicate.True) (List.map simplify ps) in
      (match ps with [] -> Predicate.True | [ p ] -> p | ps -> Predicate.And ps)
  | Predicate.Or ps -> Predicate.Or (List.map simplify ps)
  | Predicate.Not p -> Predicate.Not (simplify p)
  | p -> p

(* Split a plaintext predicate into (server part, residual part).
   AND distributes leg by leg. OR is server-checkable only when every
   leg is: the server then evaluates the union of the per-leg rewrites
   — a superset of the true answer, since each rewrite is itself a
   superset of its leg — and the residual keeps the *original*
   disjunction, which filters both bucketized false positives and the
   union's over-approximation exactly. A single unservable leg poisons
   the whole OR (the server cannot under-approximate a union), so the
   disjunction falls back to a full scan. A leaf is server-checkable
   when it is:
   - Eq/In on an encrypted (searchable) column -> rewritten to tags;
   - Eq/In/Range on the plaintext key column -> passed through;
   - Range/Eq on a range-indexed column -> rewritten to rtag buckets. *)
let rec split edb key_column = function
  | Predicate.True -> Ok (Predicate.True, Predicate.True)
  | Predicate.And ps ->
      let rec go acc_server acc_res = function
        | [] -> Ok (Predicate.And (List.rev acc_server), Predicate.And (List.rev acc_res))
        | p :: rest -> (
            match split edb key_column p with
            | Error e -> Error e
            | Ok (s, r) -> go (s :: acc_server) (r :: acc_res) rest)
      in
      go [] [] ps
  | Predicate.Or legs as p ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | leg :: rest -> (
            match split edb key_column leg with
            | Error e -> Error e
            | Ok (s, _) -> go (simplify s :: acc) rest)
      in
      Result.map
        (fun servers ->
          if List.for_all (fun s -> s <> Predicate.True) servers then
            (Predicate.Or servers, p)
          else (Predicate.True, p))
        (go [] legs)
  | Predicate.Eq (col, Value.Text v) when List.mem col (Encrypted_db.encrypted_columns edb) ->
      Ok (Encrypted_db.search_predicate edb ~column:col v, Predicate.Eq (col, Value.Text v))
  | Predicate.In (col, vs) when List.mem col (Encrypted_db.encrypted_columns edb) ->
      (* OR of per-value tag lists; each value may be a Text. *)
      let rec tags acc = function
        | [] -> Ok (List.concat (List.rev acc))
        | Value.Text v :: rest -> (
            match Encrypted_db.search_predicate edb ~column:col v with
            | Predicate.In (_, ts) -> tags (ts :: acc) rest
            | _ -> Error "unexpected rewrite shape")
        | _ -> Error (Printf.sprintf "IN-list on encrypted column %S must hold strings" col)
      in
      Result.map
        (fun ts -> (Predicate.In (Encrypted_db.tag_column col, ts), Predicate.In (col, vs)))
        (tags [] vs)
  | Predicate.Eq (col, _) when List.mem col (Encrypted_db.encrypted_columns edb) ->
      Error (Printf.sprintf "encrypted column %S only supports string equality" col)
  | (Predicate.Eq (col, _) | Predicate.In (col, _) | Predicate.Range (col, _, _)) as p
    when col = key_column ->
      Ok (p, Predicate.True)
  | Predicate.Range (col, lo, hi) as p
    when List.mem col (Encrypted_db.range_columns edb) -> (
      (* Bucketized range rewrite: overlapping buckets server-side, the
         true range client-side. *)
      let bound = function
        | None -> Ok None
        | Some (Value.Int x) -> Ok (Some x)
        | Some _ -> Error (Printf.sprintf "range column %S takes integer bounds" col)
      in
      match (bound lo, bound hi) with
      | Ok lo', Ok hi' -> Ok (Encrypted_db.range_predicate edb ~column:col ~lo:lo' ~hi:hi', p)
      | Error e, _ | _, Error e -> Error e)
  | Predicate.Eq (col, Value.Int x) when List.mem col (Encrypted_db.range_columns edb) ->
      (* Point query on a range column = one-bucket range. *)
      Ok
        ( Encrypted_db.range_predicate edb ~column:col ~lo:(Some x) ~hi:(Some x),
          Predicate.Eq (col, Value.Int x) )
  | p ->
      (* Not server-checkable: full client-side filter. The server leg
         is True (no restriction). *)
      Ok (Predicate.True, p)

(* Trace labels must not carry plaintext predicates (lint R7): scrub
   to a shape+digest fingerprint — enough to correlate repeated
   predicates across spans, nothing for a snapshot reader to read. *)
let scrub_label s =
  Printf.sprintf "len=%d digest=%s" (String.length s)
    (String.sub (Crypto.Sha256.digest_hex s) 0 12)

(* The server predicate degenerated to True while real filtering
   remains: the server ships the whole table and the proxy filters it —
   the silent-degradation mode that used to swallow rewritable ORs.
   Surface it so workloads can see they lost index service. *)
let note_full_scan server residual =
  if server = Predicate.True && residual <> Predicate.True then begin
    Obs.Metrics.incr m_full_scan;
    if Obs.Trace.is_enabled () then
      Obs.Trace.event "proxy.full_scan"
        ~attrs:[ ("residual", scrub_label (Format.asprintf "%a" Predicate.pp residual)) ]
  end

(* Split + simplify + full-scan accounting, timed as the rewrite phase. *)
let rewrite edb where =
  phase h_rewrite "proxy.rewrite" @@ fun () ->
  match split edb (Encrypted_db.key_column edb) where with
  | Error e -> Error e
  | Ok (server, residual) ->
      let server = simplify server and residual = simplify residual in
      note_full_scan server residual;
      Ok (server, residual)

let rewrite_select t (s : Sql.select) =
  match edb_for t s.table with
  | None -> Error (Printf.sprintf "no such encrypted table %S" s.table)
  | Some edb -> (
      match rewrite edb s.where with
      | Error e -> Error e
      | Ok (server, residual) ->
          let server_sql =
            Format.asprintf "SELECT * FROM %s WHERE %a" s.table Predicate.pp server
          in
          Ok { server_sql; server_predicate = server; residual })

(* Shared SELECT/DELETE/UPDATE back half: decrypt the server's answer
   lazily and keep rows passing the residual predicate, stopping after
   [limit] survivors. Decryption and filtering interleave in one pass
   — a LIMIT n query never decrypts more than it needs beyond the rows
   the residual rejects — so the two phases are accounted by summed
   per-row clock deltas and recorded as pre-measured trace spans. *)
let decrypt_filter_limit ?pool edb eval ?limit (exec : Executor.result) =
  let start_ns = Stdx.Clock.now_ns () in
  let wanted = match limit with None -> max_int | Some n -> n in
  let kept = ref [] and n_kept = ref 0 in
  let decrypt_ns = ref 0.0 and filter_ns = ref 0.0 in
  let n = Array.length exec.rows in
  let n_decrypted = ref 0 in
  let parallel =
    match pool with
    | Some p when Stdx.Task_pool.domains p > 1 -> Some p
    | Some _ | None -> None
  in
  (match parallel with
  | None ->
      (* Sequential path — also the 1-domain pool path, byte-identical
         by construction: the loop below is exactly what ran before the
         parallel stage existed. *)
      let i = ref 0 in
      while !i < n && !n_kept < wanted do
        let t0 = Stdx.Clock.now_ns () in
        let plain = Encrypted_db.decrypt_row edb exec.rows.(!i) in
        let t1 = Stdx.Clock.now_ns () in
        let keep = eval plain in
        decrypt_ns := !decrypt_ns +. (t1 -. t0);
        filter_ns := !filter_ns +. (Stdx.Clock.now_ns () -. t1);
        if keep then begin
          kept := (exec.row_ids.(!i), plain) :: !kept;
          incr n_kept
        end;
        incr i
      done;
      n_decrypted := !i
  | Some pool ->
      (* Parallel path: decrypt fixed-size chunks across the pool, then
         filter each chunk in index order until the limit is reached.
         Survivors are identical to the sequential path (same rows,
         same order, same stopping point); laziness holds at chunk
         granularity — a LIMIT query over-decrypts at most one chunk
         beyond what the sequential pass would have touched. *)
      let chunk = 256 in
      let i = ref 0 in
      while !i < n && !n_kept < wanted do
        let lo = !i in
        let len = min chunk (n - lo) in
        let t0 = Stdx.Clock.now_ns () in
        let plains =
          Stdx.Task_pool.parallel_init pool len (fun j ->
              Encrypted_db.decrypt_row edb exec.rows.(lo + j))
        in
        let t1 = Stdx.Clock.now_ns () in
        decrypt_ns := !decrypt_ns +. (t1 -. t0);
        n_decrypted := !n_decrypted + len;
        let j = ref 0 in
        while !j < len && !n_kept < wanted do
          let plain = plains.(!j) in
          if eval plain then begin
            kept := (exec.row_ids.(lo + !j), plain) :: !kept;
            incr n_kept
          end;
          incr j
        done;
        filter_ns := !filter_ns +. (Stdx.Clock.now_ns () -. t1);
        i := lo + len
      done);
  Obs.Metrics.observe h_decrypt !decrypt_ns;
  Obs.Metrics.observe h_filter !filter_ns;
  if Obs.Trace.is_enabled () then begin
    Obs.Trace.add ~name:"proxy.decrypt"
      ~attrs:[ ("rows_decrypted", string_of_int !n_decrypted) ]
      ~start_ns ~dur_ns:!decrypt_ns ();
    Obs.Trace.add ~name:"proxy.residual_filter"
      ~attrs:[ ("kept", string_of_int !n_kept) ]
      ~start_ns:(start_ns +. !decrypt_ns) ~dur_ns:!filter_ns ()
  end;
  List.rev !kept

(* The ESEDS plan applies when the predicate pins a range column at
   conjunctive position: a bare Range (or point-Eq) leg with integer
   bounds, or such a leg of a top-level AND. Under OR/NOT the flat
   rtag rewrite stays in charge — a traversal serves one contiguous
   canonical cover, not a union of them. *)
let rec traversal_leg edb = function
  | Predicate.Range (col, lo, hi) when List.mem col (Encrypted_db.range_columns edb) -> (
      let bound = function
        | None -> Some None
        | Some (Value.Int x) -> Some (Some x)
        | Some _ -> None
      in
      match (bound lo, bound hi) with
      | Some lo', Some hi' -> Some (col, lo', hi')
      | _ -> None)
  | Predicate.Eq (col, Value.Int x) when List.mem col (Encrypted_db.range_columns edb) ->
      Some (col, Some x, Some x)
  | Predicate.And ps -> List.find_map (traversal_leg edb) ps
  | _ -> None

(* Whether any part of the predicate touches a range column — the flat
   fallback counter's guard, so traverse/flat totals partition range
   queries. *)
let rec uses_range_column edb = function
  | Predicate.Range (col, _, _) | Predicate.Eq (col, _) ->
      List.mem col (Encrypted_db.range_columns edb)
  | Predicate.And ps | Predicate.Or ps -> List.exists (uses_range_column edb) ps
  | Predicate.Not p -> uses_range_column edb p
  | Predicate.True | Predicate.In _ -> false

(* Shared SELECT/DELETE/UPDATE front half: run the rewritten server
   query, decrypt, apply the residual predicate; returns surviving
   (row_id, plaintext_row) pairs plus the raw executor result.

   Range predicates at conjunctive position take the [Range_traverse]
   plan over a frozen view (frozen here when the caller brought none —
   mutations are caller-serialized, so the freeze is consistent): the
   query ships O(log B) cover roots, the server expands them over the
   encrypted boundary tree, and the residual pass counts edge-bucket
   false positives into [range.edge_fp_rows_total]. The traversal's
   candidate set equals the flat rtag IN-list's, so results stay
   byte-identical to the flat plan and to the sequential path. *)
let fetch_matching ?pool ?view edb ?limit where =
  match rewrite edb where with
  | Error e -> Error e
  | Ok (server, residual) -> (
      let traversal = traversal_leg edb where in
      (match traversal with
      | Some _ -> Obs.Metrics.incr m_range_traverse
      | None -> if uses_range_column edb where then Obs.Metrics.incr m_range_flat);
      match
        phase h_exec "proxy.server_exec" (fun () ->
            match traversal with
            | Some (col, lo, hi) ->
                let v =
                  match view with
                  | Some v when Read_view.name v = table_name edb -> v
                  | Some _ | None -> Encrypted_db.freeze edb
                in
                let cover = Encrypted_db.range_cover edb ~column:col ~lo ~hi in
                Executor.run_traverse ?pool v
                  ~tree:(Encrypted_db.range_tree edb col)
                  ~tag_column:(Encrypted_db.rtag_column col)
                  ~roots:cover.Range_struct.roots ~projection:Executor.All_columns server
            | None -> (
                match view with
                | Some v -> Executor.run_view ?pool v ~projection:Executor.All_columns server
                | None ->
                    Executor.run (Encrypted_db.table edb) ~projection:Executor.All_columns server))
      with
      | exception Not_found -> Error "predicate references an unknown column"
      | exec -> (
          let plain_schema = Encrypted_db.plain_schema edb in
          match Predicate.compile plain_schema residual with
          | exception Not_found -> Error "residual predicate references an unknown column"
          | eval ->
              let eval =
                match traversal with
                | None -> eval
                | Some (col, lo, hi) ->
                    (* Edge-bucket false-positive accounting, fused into
                       the lazy residual pass: a decrypted row outside
                       the true range came from an edge bucket. *)
                    let wrap v = Option.map (fun x -> Value.Int x) v in
                    let in_range =
                      Predicate.compile plain_schema (Predicate.Range (col, wrap lo, wrap hi))
                    in
                    fun row ->
                      if not (in_range row) then Obs.Metrics.incr m_edge_fp;
                      eval row
              in
              Ok (decrypt_filter_limit ?pool edb eval ?limit exec, exec)))

(* The cover a statement's range leg would ship — (column, root
   pseudonyms) — for tests and the leakage experiment's transcript
   capture. [None] when the flat rewrite stays in charge. *)
let range_cover_for t ~table where =
  match edb_for t table with
  | None -> None
  | Some edb -> (
      match traversal_leg edb where with
      | None -> None
      | Some (col, lo, hi) ->
          let cover = Encrypted_db.range_cover edb ~column:col ~lo ~hi in
          Some (col, cover.Range_struct.roots))

(* Project surviving plaintext rows per the SELECT's projection list. *)
let select_result edb (s : Sql.select) pairs (exec : Executor.result) =
  let plain_schema = Encrypted_db.plain_schema edb in
  let limited = List.map snd pairs in
  let server_rows = Array.length exec.rows in
  match s.projection with
  | `Star ->
      let columns =
        List.map (fun (c : Schema.column) -> c.name) (Array.to_list (Schema.columns plain_schema))
      in
      Ok { columns; rows = limited; affected = 0; server_rows; exec = Some exec; join_exec = None }
  | `Columns cols -> (
      match List.map (fun c -> (c, Schema.column_index plain_schema c)) cols with
      | exception Not_found -> Error "projected column does not exist"
      | idx_pairs ->
          let rows =
            List.map (fun row -> Array.of_list (List.map (fun (_, i) -> row.(i)) idx_pairs)) limited
          in
          Ok { columns = cols; rows; affected = 0; server_rows; exec = Some exec; join_exec = None })

(* ---------------- Encrypted equi-joins ---------------- *)

(* Resolve both sides of a join (exact names — no single-table
   fallback) and require the ON columns to be searchable encrypted
   columns: the tag-bucket join only exists over WRE search tags. *)
let resolve_join t (j : Sql.join) =
  match (edb_exact t j.Sql.j_left, edb_exact t j.Sql.j_right) with
  | None, _ -> Error (Printf.sprintf "no such encrypted table %S" j.Sql.j_left)
  | _, None -> Error (Printf.sprintf "no such encrypted table %S" j.Sql.j_right)
  | Some el, Some er ->
      let cl = j.Sql.j_on_left.Sql.q_column and cr = j.Sql.j_on_right.Sql.q_column in
      if not (List.mem cl (Encrypted_db.encrypted_columns el)) then
        Error
          (Printf.sprintf "join column %S is not a searchable encrypted column of %S" cl
             j.Sql.j_left)
      else if not (List.mem cr (Encrypted_db.encrypted_columns er)) then
        Error
          (Printf.sprintf "join column %S is not a searchable encrypted column of %S" cr
             j.Sql.j_right)
      else Ok (el, er)

(* One bucket per plaintext in both sides' profiled supports: the salt
   tag sets either side's rows may carry for that plaintext. Bucket
   order is the left support's canonical (descending-probability)
   order — deterministic, and what the leakage experiment keys on. *)
let join_buckets el col_l er col_r =
  let sup_l = Encrypted_db.support el ~column:col_l in
  let sup_r = Encrypted_db.support er ~column:col_r in
  let rset = Hashtbl.create (Array.length sup_r) in
  Array.iter (fun m -> Hashtbl.replace rset m ()) sup_r;
  Array.of_list
    (List.filter_map
       (fun m ->
         if Hashtbl.mem rset m then
           Some
             ( m,
               List.map (fun x -> Value.Int x) (Encrypted_db.tags_for el ~column:col_l m),
               List.map (fun x -> Value.Int x) (Encrypted_db.tags_for er ~column:col_r m) )
         else None)
       (Array.to_list sup_l))

let rewrite_join t (j : Sql.join) =
  match resolve_join t j with
  | Error e -> Error e
  | Ok (el, er) ->
      Ok (join_buckets el j.Sql.j_on_left.Sql.q_column er j.Sql.j_on_right.Sql.q_column)

(* Plaintext equality for the residual ON verification. TEXT compares
   in constant time: these are decrypted secrets, and the comparison
   outcome alone is what we are allowed to leak. *)
let value_eq (a : Value.t) (b : Value.t) =
  match (a, b) with
  | Value.Text x, Value.Text y -> Stdx.Bytes_util.ct_equal x y
  | _ -> a = b

(* The encrypted join, end to end. Server side: tag-bucket hash join
   over the two frozen views (candidate pairs are a superset of the
   true join — salt tags collide across plaintexts for bucketized
   schemes, and 64-bit tags can collide for any scheme). Client side:
   decrypt each distinct row id once (memoized per side), then
   re-verify every candidate pair on plaintext — ON-column equality
   first, then the WHERE residual over the combined row — stopping at
   LIMIT survivors. Both freezes happen back to back: proxy mutations
   are caller-serialized (the server admission queue single-threads
   writes), so the pair of views is epoch-consistent. *)
let execute_join ?pool t (j : Sql.join) =
  Obs.Metrics.incr m_join;
  match resolve_join t j with
  | Error e -> Error e
  | Ok (el, er) -> (
      let col_l = j.Sql.j_on_left.Sql.q_column and col_r = j.Sql.j_on_right.Sql.q_column in
      match
        Sql.join_schema j (Encrypted_db.plain_schema el) (Encrypted_db.plain_schema er)
      with
      | Error e -> Error e
      | Ok combined -> (
          match Sql.join_projection j combined with
          | Error e -> Error e
          | Ok columns -> (
              match Predicate.compile combined j.Sql.j_where with
              | exception Not_found -> Error "predicate references an unknown column"
              | eval ->
                  let buckets =
                    phase h_rewrite "proxy.join_rewrite" (fun () ->
                        join_buckets el col_l er col_r)
                  in
                  let vl = Encrypted_db.freeze el in
                  let vr = Encrypted_db.freeze er in
                  let jr =
                    phase h_exec "proxy.join_server_exec" (fun () ->
                        Executor.run_join ?pool ~left:vl ~right:vr
                          ~on_left:(Encrypted_db.tag_column col_l)
                          ~on_right:(Encrypted_db.tag_column col_r)
                          (Join.Buckets (Array.map (fun (_, l, r) -> (l, r)) buckets)))
                  in
                  let start_ns = Stdx.Clock.now_ns () in
                  let decrypt_ns = ref 0.0 and filter_ns = ref 0.0 in
                  let cache_l = Hashtbl.create 64 and cache_r = Hashtbl.create 64 in
                  let dec cache view edb id =
                    match Hashtbl.find_opt cache id with
                    | Some p -> p
                    | None ->
                        let t0 = Stdx.Clock.now_ns () in
                        let p = Encrypted_db.decrypt_row edb (Read_view.read_row view id) in
                        decrypt_ns := !decrypt_ns +. (Stdx.Clock.now_ns () -. t0);
                        Hashtbl.replace cache id p;
                        p
                  in
                  let lidx = Schema.column_index (Encrypted_db.plain_schema el) col_l in
                  let ridx = Schema.column_index (Encrypted_db.plain_schema er) col_r in
                  let idxs = List.map (Schema.column_index combined) columns in
                  let wanted = match j.Sql.j_limit with None -> max_int | Some n -> n in
                  let kept = ref [] and n_kept = ref 0 and n_verified = ref 0 in
                  let npairs = Array.length jr.Join.pairs in
                  let i = ref 0 in
                  while !i < npairs && !n_kept < wanted do
                    let l, r = jr.Join.pairs.(!i) in
                    let pl = dec cache_l vl el l and pr = dec cache_r vr er r in
                    let t1 = Stdx.Clock.now_ns () in
                    if value_eq pl.(lidx) pr.(ridx) then begin
                      incr n_verified;
                      let row = Array.append pl pr in
                      if eval row then begin
                        kept := Array.of_list (List.map (fun k -> row.(k)) idxs) :: !kept;
                        incr n_kept
                      end
                    end;
                    filter_ns := !filter_ns +. (Stdx.Clock.now_ns () -. t1);
                    incr i
                  done;
                  Obs.Metrics.add m_pairs_verified !n_verified;
                  Obs.Metrics.observe h_decrypt !decrypt_ns;
                  Obs.Metrics.observe h_filter !filter_ns;
                  if Obs.Trace.is_enabled () then begin
                    Obs.Trace.add ~name:"proxy.decrypt"
                      ~attrs:
                        [
                          ( "rows_decrypted",
                            string_of_int (Hashtbl.length cache_l + Hashtbl.length cache_r) );
                        ]
                      ~start_ns ~dur_ns:!decrypt_ns ();
                    Obs.Trace.add ~name:"proxy.join_verify"
                      ~attrs:
                        [
                          ("pairs_candidate", string_of_int npairs);
                          ("pairs_verified", string_of_int !n_verified);
                          ("kept", string_of_int !n_kept);
                        ]
                      ~start_ns:(start_ns +. !decrypt_ns) ~dur_ns:!filter_ns ()
                  end;
                  Ok
                    {
                      columns;
                      rows = List.rev !kept;
                      affected = 0;
                      server_rows = npairs;
                      exec = None;
                      join_exec = Some jr;
                    })))

let execute_stmt t stmt =
  match stmt with
  | Sql.Create_table _ -> Error "the proxy does not rewrite CREATE TABLE"
  | Sql.Select_join j -> execute_join t j
  | Sql.Delete { table; where } -> (
      Obs.Metrics.incr m_delete;
      match edb_for t table with
      | None -> Error (Printf.sprintf "no such encrypted table %S" table)
      | Some edb -> (
          match fetch_matching edb where with
          | Error e -> Error e
          | Ok (pairs, exec) ->
              let n =
                List.fold_left
                  (fun acc (id, _) -> if Encrypted_db.delete_row edb id then acc + 1 else acc)
                  0 pairs
              in
              Ok
                {
                  columns = [];
                  rows = [];
                  affected = n;
                  server_rows = Array.length exec.row_ids;
                  exec = Some exec;
                  join_exec = None;
                }))
  | Sql.Update { table; assignments; where } -> (
      Obs.Metrics.incr m_update;
      match edb_for t table with
      | None -> Error (Printf.sprintf "no such encrypted table %S" table)
      | Some edb -> (
          let plain_schema = Encrypted_db.plain_schema edb in
          match List.map (fun (c, v) -> (Schema.column_index plain_schema c, v)) assignments with
          | exception Not_found -> Error "SET references an unknown column"
          | positions -> (
              match fetch_matching edb where with
              | Error e -> Error e
              | Ok (pairs, exec) -> (
                  (* Two-phase apply: encrypt every replacement first, so a
                     row outside the profiled distribution (or any schema
                     error) fails the statement *before* a single tombstone
                     — a mid-batch failure must not lose the already-deleted
                     prefix. Only then tombstone + insert, MVCC-style. *)
                  match
                    List.map
                      (fun (id, plain) ->
                        let row = Array.copy plain in
                        List.iter (fun (i, v) -> row.(i) <- v) positions;
                        (id, Encrypted_db.encrypt_plain_row edb row))
                      pairs
                  with
                  | staged ->
                      List.iter
                        (fun (id, enc) ->
                          ignore (Encrypted_db.delete_row edb id : bool);
                          ignore (Encrypted_db.insert_encrypted edb enc : int))
                        staged;
                      Ok
                        {
                          columns = [];
                          rows = [];
                          affected = List.length staged;
                          server_rows = Array.length exec.row_ids;
                          exec = Some exec;
                          join_exec = None;
                        }
                  | exception Invalid_argument e -> Error e
                  | exception Column_enc.Unknown_plaintext v ->
                      Error (Printf.sprintf "plaintext %S is outside the profiled distribution" v)))))
  | Sql.Insert { table; values } -> (
      Obs.Metrics.incr m_insert;
      match edb_for t table with
      | None -> Error (Printf.sprintf "no such encrypted table %S" table)
      | Some edb -> (
          match Encrypted_db.insert edb (Array.of_list values) with
          | _id ->
              Ok
                {
                  columns = [];
                  rows = [];
                  affected = 1;
                  server_rows = 0;
                  exec = None;
                  join_exec = None;
                }
          | exception Invalid_argument e -> Error e
          | exception Column_enc.Unknown_plaintext v ->
              Error (Printf.sprintf "plaintext %S is outside the profiled distribution" v)))
  | Sql.Select s -> (
      Obs.Metrics.incr m_select;
      match edb_for t s.table with
      | None -> Error (Printf.sprintf "no such encrypted table %S" s.table)
      | Some edb -> (
          match fetch_matching edb ?limit:s.limit s.where with
          | Error e -> Error e
          | Ok (pairs, exec) -> select_result edb s pairs exec))

let execute t src =
  Obs.Trace.with_span "proxy.execute" @@ fun () ->
  match phase h_parse "proxy.parse" (fun () -> Sql.parse src) with
  | Error e -> Error e
  | Ok stmt -> execute_stmt t stmt

(* Snapshot-read entry point: SELECTs run against a frozen epoch (the
   given [view], or one frozen now) with the index probes and the
   decrypt/residual-filter/LIMIT pass optionally fanned over [pool];
   any other statement takes the normal write path — mutations are not
   served from snapshots. A JOIN freezes its own pair of views (the
   per-batch [view] is a single table's snapshot) in one
   epoch-consistent step, fanning the per-bucket probes over [pool]. *)
let execute_snapshot ?pool ?view t src =
  Obs.Trace.with_span "proxy.execute" @@ fun () ->
  match phase h_parse "proxy.parse" (fun () -> Sql.parse src) with
  | Error e -> Error e
  | Ok (Sql.Select s) -> (
      Obs.Metrics.incr m_select;
      match edb_for t s.table with
      | None -> Error (Printf.sprintf "no such encrypted table %S" s.table)
      | Some edb -> (
          (* A caller-provided view only applies when it snapshots the
             resolved table (multi-table batches freeze one table's
             epoch up front); otherwise freeze this table now. *)
          let view =
            match view with
            | Some v when Read_view.name v = table_name edb -> v
            | Some _ | None -> Encrypted_db.freeze edb
          in
          match fetch_matching ?pool ~view edb ?limit:s.limit s.where with
          | Error e -> Error e
          | Ok (pairs, exec) -> select_result edb s pairs exec))
  | Ok (Sql.Select_join j) -> execute_join ?pool t j
  | Ok stmt -> execute_stmt t stmt
