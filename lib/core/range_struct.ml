type t = {
  boundaries : int64 array;
  nodes : Sqldb.Range_tree.node array;
  tree : Sqldb.Range_tree.t;
}

type cover = { roots : int64 array; first_bucket : int; last_bucket : int }

(* A node covering buckets [blo, bhi) gets the PRF pseudonym of that
   interval. [bhi <= b] and [blo < b], so [blo * (b + 1) + bhi] is
   injective over intervals — distinct intervals can never collide on
   a salt, and a single-bucket leaf's salt differs from the bucket
   search tag's salt space because it uses a separate key. *)
let node_salt ~b ~blo ~bhi = (blo * (b + 1)) + bhi

let create ~master ~column ~boundaries =
  let boundaries = Array.copy boundaries in
  Array.iteri
    (fun i v ->
      if i > 0 && Int64.compare boundaries.(i - 1) v >= 0 then
        invalid_arg "Range_struct.create: boundaries must be strictly increasing")
    boundaries;
  let b = Array.length boundaries + 1 in
  (* Leaf bucket tags reuse the flat [Range_index] derivation (same
     "/range" key, salt = bucket id) so a traversal expands to exactly
     the tags the rtag column stores; internal pseudonyms come from a
     separate "/range/node" key so the two tag spaces never overlap. *)
  let leaf_prf = Crypto.Keys.prf_key master ~column:(column ^ "/range") in
  let node_prf = Crypto.Keys.prf_key master ~column:(column ^ "/range/node") in
  let nodes = Stdx.Vec.create ~capacity:((2 * b) - 1) () in
  (* Balanced mid-split over [blo, bhi), children in preorder. *)
  let rec build blo bhi =
    let me = Stdx.Vec.length nodes in
    let tag = Crypto.Prf.tag_salt_only node_prf ~salt:(node_salt ~b ~blo ~bhi) in
    if bhi - blo = 1 then
      Stdx.Vec.push nodes
        Sqldb.Range_tree.
          { tag; left = -1; right = -1; bucket = Crypto.Prf.tag_salt_only leaf_prf ~salt:blo }
    else begin
      Stdx.Vec.push nodes Sqldb.Range_tree.{ tag; left = -1; right = -1; bucket = 0L };
      let mid = blo + ((bhi - blo) / 2) in
      build blo mid;
      let right = Stdx.Vec.length nodes in
      build mid bhi;
      Stdx.Vec.set nodes me Sqldb.Range_tree.{ tag; left = me + 1; right; bucket = 0L }
    end
  in
  build 0 b;
  let nodes = Stdx.Vec.to_array nodes in
  { boundaries; nodes; tree = Sqldb.Range_tree.make nodes }

let of_index ~master ~column index =
  create ~master ~column ~boundaries:(Range_index.boundaries index)

let bucket_count t = Array.length t.boundaries + 1
let node_count t = Array.length t.nodes
let depth t = Sqldb.Range_tree.depth t.tree
let tree t = t.tree
let nodes t = Array.copy t.nodes
let root_tag t = t.nodes.(0).Sqldb.Range_tree.tag

(* Same binary search as [Range_index.bucket_of]: first bucket whose
   upper bound is >= v. *)
let bucket_of t v =
  let lo = ref 0 and hi = ref (Array.length t.boundaries) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Int64.compare t.boundaries.(mid) v < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let cover t ~lo ~hi =
  let b = bucket_count t in
  let first = match lo with None -> 0 | Some v -> bucket_of t v in
  let last = match hi with None -> b - 1 | Some v -> bucket_of t v in
  if last < first then { roots = [||]; first_bucket = first; last_bucket = last }
  else begin
    (* Canonical segment-tree cover: a node wholly inside [first, last]
       is emitted as a root; a node wholly outside is skipped; a
       partial overlap recurses (always an internal node, because leaf
       intervals are single buckets). Left-first recursion emits roots
       in bucket order, giving O(log B) roots on a balanced tree. *)
    let roots = Stdx.Vec.create () in
    let rec go idx blo bhi =
      if first <= blo && bhi <= last + 1 then
        Stdx.Vec.push roots t.nodes.(idx).Sqldb.Range_tree.tag
      else if bhi <= first || blo > last then ()
      else begin
        let nd = t.nodes.(idx) in
        let mid = blo + ((bhi - blo) / 2) in
        go nd.Sqldb.Range_tree.left blo mid;
        go nd.Sqldb.Range_tree.right mid bhi
      end
    in
    go 0 0 b;
    { roots = Stdx.Vec.to_array roots; first_bucket = first; last_bucket = last }
  end

(* Client-side expansion of a cover to its leaf bucket tags, in bucket
   order — the reference the differential/qcheck suites compare against
   [Range_index.tags_for_range]. *)
let leaf_tags t cov =
  Array.to_list
    (Array.concat
       (Array.to_list
          (Array.map
             (fun root ->
               match Sqldb.Range_tree.traverse t.tree ~root with
               | Some (leaves, _) -> leaves
               | None -> [||])
             cov.roots)))
