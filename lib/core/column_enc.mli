(** Per-column WRE encryptor: the scheme Π = (Gen, Enc, Dec, Search) of
    paper Fig. 1 instantiated for one database column.

    Enc produces a (search tag, ciphertext) pair; Search expands a
    plaintext into the OR-of-tags list the server can answer from a
    standard index; Dec discards the tag and CTR-decrypts. The salt
    set for each plaintext is cached (with an alias sampler) because
    encryption is called once per row at 10M-record scale. *)

type t

exception Unknown_plaintext of string
(** Raised by {!encrypt} for values outside the distribution's support
    under the distribution-dependent schemes (Proportional, Poisson,
    Bucketized) when the fallback policy is [`Reject]. *)

type fallback =
  [ `Reject  (** paper semantics: the distribution is fixed at init *)
  | `Min_frequency
    (** updates extension (paper §IV defers this to future work):
        treat a novel plaintext as having the column's smallest known
        frequency τ. Poisson allocates salts on [0, τ]; Proportional
        gives one salt; Bucketized maps the value to one
        pseudo-randomly chosen existing bucket. New values become
        encryptable and searchable; their security degrades gracefully
        to "as protected as the rarest profiled value". *) ]

val create :
  ?fallback:fallback ->
  ?tag_algo:Crypto.Prf.algo ->
  master:Crypto.Keys.master ->
  column:string ->
  kind:Scheme.kind ->
  dist:Dist.Empirical.t ->
  unit ->
  t
(** [tag_algo] selects the search-tag PRF backend (default
    HMAC-SHA256; SipHash-2-4 for bulk-load-bound deployments). *)

val column : t -> string
val kind : t -> Scheme.kind
val dist : t -> Dist.Empirical.t

val salt_set : t -> string -> Salts.t option
(** The deterministic salt set for a plaintext ([None] outside support
    for distribution-dependent schemes). *)

val prewarm : t -> string list -> unit
(** Compute and cache the salt set (and alias sampler) for each given
    plaintext now, on the calling domain. Once every plaintext of a
    batch is prewarmed, concurrent {!encrypt} calls for those
    plaintexts are read-only on the encryptor and safe to run from
    multiple domains (each with its own PRNG). Unknown plaintexts are
    cached as unknown — {!encrypt} still raises for them. *)

val encrypt : t -> Stdx.Prng.t -> string -> int64 * string
(** [(tag, ciphertext)]: tag = F_{k1}(s‖m) (or F_{k1}(s) when
    bucketized), ciphertext = AES-CTR(k0, m) under a fresh nonce. *)

val search_tags : t -> string -> int64 list
(** All tags a SELECT … WHERE col = m must OR together. Empty for
    unknown plaintexts. *)

val decrypt : t -> string -> string
(** Inverse of the ciphertext half of {!encrypt}. *)

val bucket_layout : t -> Bucket_layout.t option
(** Exposed for the false-positive experiments; [Some] iff bucketized. *)
