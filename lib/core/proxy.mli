(** Query-rewriting proxy: the paper's deployment story.

    §I: an efficiently searchable encryption "might be done through a
    query proxy rather than a complex database construction" — the
    CryptDB model. Applications speak plaintext SQL against the
    original schema; the proxy rewrites each statement for the
    encrypted table, sends it to the unmodified server, decrypts the
    answer and applies any residual filtering client-side.

    Rewriting rules for a SELECT:
    - equality / IN on an encrypted column → [col_tag IN (tags…)];
    - predicates on the plaintext key column pass through;
    - a disjunction whose legs are {e all} server-checkable → the OR of
      the per-leg rewrites (a tag-list union the executor answers as a
      deduplicated union of index lookups); the original plaintext OR
      stays in the residual, which filters bucketized false positives
      and the union's over-approximation exactly;
    - anything else (predicates on non-searchable columns, negations,
      ORs with an unservable leg) cannot be evaluated by the server —
      it stays as a client-side filter over the decrypted rows, and the
      server-side predicate keeps only the AND-legs it can handle. When
      the server predicate degenerates to [True] while real filtering
      remains, the proxy bumps the [proxy.full_scan_total] counter and
      emits a [proxy.full_scan] trace event: the query silently lost
      index service and ships the whole table.

    INSERT statements are encrypted field-by-field.

    Every statement runs under a [proxy.execute] trace span with
    parse / rewrite / server-exec / decrypt / residual-filter children,
    and feeds the [proxy.*] statement counters and [query.*_ns] phase
    histograms in {!Obs.Metrics}. *)

type t

val create : Encrypted_db.t -> t

type rewritten = {
  server_sql : string;  (** what actually goes to the DBMS (for logs/tests) *)
  server_predicate : Sqldb.Predicate.t;
  residual : Sqldb.Predicate.t;  (** evaluated client-side after decryption *)
}

val rewrite_select : t -> Sqldb.Sql.select -> (rewritten, string) result
(** Expose the rewrite without executing (tests, EXPLAIN). *)

type query_result = {
  columns : string list;
  rows : Sqldb.Value.t array list;  (** decrypted, residual-filtered, projected *)
  affected : int;  (** rows inserted / deleted / updated *)
  server_rows : int;  (** rows the server returned (incl. bucketized FPs) *)
  exec : Sqldb.Executor.result option;
}

val execute : t -> string -> (query_result, string) result
(** Parse plaintext SQL (SELECT / INSERT / DELETE / UPDATE against the
    plaintext schema), run it through the encrypted database. DELETE
    and UPDATE decrypt and residual-filter before touching rows, so
    bucketized false positives are never deleted or rewritten.

    UPDATE is atomic with respect to encryption failures: every
    replacement row is encrypted (and validated) first, and only when
    the whole batch succeeds are old versions tombstoned and new ones
    inserted (MVCC-style) — a replacement value outside the profiled
    distribution fails the statement with the table unchanged.

    SELECT decrypts lazily: decryption, residual filtering and LIMIT
    fuse into one pass over the server's answer, so [LIMIT n] stops
    after the n-th surviving row instead of decrypting the full result
    set (visible as the [edb.rows_decrypted_total] counter). *)

val execute_snapshot :
  ?pool:Stdx.Task_pool.t ->
  ?view:Sqldb.Read_view.t ->
  t ->
  string ->
  (query_result, string) result
(** {!execute}, with SELECTs served from a frozen epoch snapshot: the
    given [view] (freeze once, query many) or one frozen at call time.
    [pool] fans the per-tag index probes and the decrypt/residual-
    filter/LIMIT pass across domains; the decrypted result is identical
    to {!execute} at the same epoch — chunked decryption preserves row
    order and the LIMIT stopping point, and with no pool (or a 1-domain
    pool) the execution is byte-identical to the sequential path.
    Non-SELECT statements take the normal write path: mutations are
    never served from snapshots. *)
