(** Query-rewriting proxy: the paper's deployment story.

    §I: an efficiently searchable encryption "might be done through a
    query proxy rather than a complex database construction" — the
    CryptDB model. Applications speak plaintext SQL against the
    original schema; the proxy rewrites each statement for the
    encrypted table, sends it to the unmodified server, decrypts the
    answer and applies any residual filtering client-side.

    Rewriting rules for a SELECT:
    - equality / IN on an encrypted column → [col_tag IN (tags…)];
    - predicates on the plaintext key column pass through;
    - [BETWEEN] / [<=] / [>=] / strict [<] [>] / point equality on a
      range-indexed INT column → the ESEDS [Range_traverse] plan when
      the leg sits at conjunctive position (the query ships O(log B)
      canonical-cover roots; the server expands them over the
      encrypted boundary tree, DESIGN.md §5k), the flat
      [col_rtag IN (…)] bucket rewrite otherwise (range under OR/NOT);
      either way the true range stays in the residual, which filters
      edge-bucket false positives ([range.edge_fp_rows_total]);
    - a disjunction whose legs are {e all} server-checkable → the OR of
      the per-leg rewrites (a tag-list union the executor answers as a
      deduplicated union of index lookups); the original plaintext OR
      stays in the residual, which filters bucketized false positives
      and the union's over-approximation exactly;
    - anything else (predicates on non-searchable columns, negations,
      ORs with an unservable leg) cannot be evaluated by the server —
      it stays as a client-side filter over the decrypted rows, and the
      server-side predicate keeps only the AND-legs it can handle. When
      the server predicate degenerates to [True] while real filtering
      remains, the proxy bumps the [proxy.full_scan_total] counter and
      emits a [proxy.full_scan] trace event: the query silently lost
      index service and ships the whole table.

    INSERT statements are encrypted field-by-field.

    Two-table equi-joins
    ([SELECT … FROM a JOIN b ON a.x = b.y [WHERE …]]) rewrite to a
    server-side tag-bucket hash join: the proxy intersects the two join
    columns' profiled supports, emits one bucket per shared plaintext
    holding both sides' full salt-tag lists, and the server
    ({!Sqldb.Executor.run_join}) resolves each bucket to candidate row
    pairs via its tag indexes — custom-free index work, like the
    single-table path. Candidates are a {e superset} of the true join
    (bucketized schemes share tags across plaintexts; 64-bit tags can
    collide), so the proxy decrypts each distinct row once and
    re-verifies every pair on plaintext — constant-time ON-column
    equality, then the WHERE residual over the combined
    [left.col]/[right.col] row — before projecting and applying LIMIT.
    The server observes the bucket structure and per-bucket candidate
    counts: the join-degree distribution of the shared support, the
    leakage {!Attacks} quantifies.

    Every statement runs under a [proxy.execute] trace span with
    parse / rewrite / server-exec / decrypt / residual-filter children,
    and feeds the [proxy.*] statement counters and [query.*_ns] phase
    histograms in {!Obs.Metrics}. *)

type t

val create : Encrypted_db.t -> t
(** A single-table proxy: {!create_multi} with one table. *)

val create_multi : Encrypted_db.t list -> t
(** A proxy over several encrypted tables, keyed by their table names.
    Single-table statements resolve by the statement's FROM name (with
    a fallback to the sole table when exactly one is registered, for
    backward compatibility); joins require exact matches on both
    names. Raises [Invalid_argument] on an empty list or duplicate
    table names. *)

type rewritten = {
  server_sql : string;  (** what actually goes to the DBMS (for logs/tests) *)
  server_predicate : Sqldb.Predicate.t;
  residual : Sqldb.Predicate.t;  (** evaluated client-side after decryption *)
}

val rewrite_select : t -> Sqldb.Sql.select -> (rewritten, string) result
(** Expose the rewrite without executing (tests, EXPLAIN). *)

val rewrite_join :
  t -> Sqldb.Sql.join -> ((string * Sqldb.Value.t list * Sqldb.Value.t list) array, string) result
(** The tag buckets a join compiles to, one per plaintext shared by
    both join columns' profiled supports, in the left support's
    canonical (descending-probability) order:
    [(plaintext, left tags, right tags)]. Exposed for tests, EXPLAIN
    and the join-leakage experiment (which needs bucket ↔ plaintext
    ground truth). Fails when a table is unknown or an ON column is
    not a searchable encrypted column. *)

val range_cover_for :
  t -> table:string -> Sqldb.Predicate.t -> (string * int64 array) option
(** The ESEDS cover a statement's range leg ships — the range column
    and the canonical-cover root pseudonyms — when the predicate pins
    a range column at conjunctive position (bare or ANDed
    [BETWEEN]/[<=]/[>=]/point equality with integer bounds). [None]
    when the flat rtag IN-list rewrite stays in charge (range leg
    under OR/NOT, non-integer bounds, no range leg). Exposed for
    tests and the range-leakage experiment's transcript capture. *)

type query_result = {
  columns : string list;
      (** projected column names (qualified [table.column] for a join) *)
  rows : Sqldb.Value.t array list;  (** decrypted, residual-filtered, projected *)
  affected : int;  (** rows inserted / deleted / updated *)
  server_rows : int;
      (** rows the server returned (incl. bucketized FPs); candidate
          pairs for a join *)
  exec : Sqldb.Executor.result option;
  join_exec : Sqldb.Join.result option;
      (** the server-side join result (candidate pairs, per-bucket
          counts, stats) — [Some] for joins only *)
}

val execute : t -> string -> (query_result, string) result
(** Parse plaintext SQL (SELECT / JOIN / INSERT / DELETE / UPDATE
    against the plaintext schema), run it through the encrypted
    database. DELETE and UPDATE decrypt and residual-filter before
    touching rows, so bucketized false positives are never deleted or
    rewritten.

    UPDATE is atomic with respect to encryption failures: every
    replacement row is encrypted (and validated) first, and only when
    the whole batch succeeds are old versions tombstoned and new ones
    inserted (MVCC-style) — a replacement value outside the profiled
    distribution fails the statement with the table unchanged.

    SELECT decrypts lazily: decryption, residual filtering and LIMIT
    fuse into one pass over the server's answer, so [LIMIT n] stops
    after the n-th surviving row instead of decrypting the full result
    set (visible as the [edb.rows_decrypted_total] counter).

    A JOIN freezes both tables' views back to back — epoch-consistent
    under the single-writer discipline every deployment in this repo
    maintains (the server admission queue serializes mutations) — and
    decrypts each distinct candidate row once per side (memoized), so
    a row appearing in many candidate pairs costs one decryption. *)

val execute_snapshot :
  ?pool:Stdx.Task_pool.t ->
  ?view:Sqldb.Read_view.t ->
  t ->
  string ->
  (query_result, string) result
(** {!execute}, with SELECTs served from a frozen epoch snapshot: the
    given [view] (freeze once, query many) or one frozen at call time.
    [pool] fans the per-tag index probes and the decrypt/residual-
    filter/LIMIT pass across domains; the decrypted result is identical
    to {!execute} at the same epoch — chunked decryption preserves row
    order and the LIMIT stopping point, and with no pool (or a 1-domain
    pool) the execution is byte-identical to the sequential path.
    A JOIN ignores [view] (a single table's snapshot) and freezes its
    own epoch-consistent pair, fanning the per-bucket probes over
    [pool] — same answer at any domain count. Non-SELECT statements
    take the normal write path: mutations are never served from
    snapshots. *)
