(* lint: guarded-by construction (tables filled in create, read-only afterwards) *)
type t = {
  lambda : float;
  widths : float array;
  per_message : (string, Salts.t) Hashtbl.t;
  by_bucket : string list array; (* inverted: bucket -> overlapping messages *)
  masses : (string, float) Hashtbl.t; (* message -> retrieved bucket mass *)
}

let lambda t = t.lambda
let bucket_count t = Array.length t.widths
let bucket_widths t = Array.copy t.widths

let create ~seed ~shuffle_key ~column ~dist ~lambda =
  if lambda <= 0.0 then invalid_arg "Bucket_layout.create: lambda must be positive";
  let drbg = Crypto.Drbg.create ~seed in
  let widths =
    Dist.Poisson.process_on_interval ~rate:lambda ~length:1.0 (Dist.Source.of_drbg drbg)
  in
  let support = Dist.Empirical.support dist in
  let shuffled = Crypto.Prs.shuffle ~key:shuffle_key ~context:column support in
  let n_buckets = Array.length widths in
  let per_message = Hashtbl.create (Array.length shuffled) in
  let by_bucket = Array.make n_buckets [] in
  let masses = Hashtbl.create (Array.length shuffled) in
  (* Walk messages and buckets in lockstep; both tile [0,1). A bucket
     whose end lies beyond the current message's interval is kept for
     the next message — that sharing is the point of the scheme. *)
  let b = ref 0 in
  let bucket_start = ref 0.0 in
  let fr = ref 0.0 in
  Array.iter
    (fun m ->
      let p = Dist.Empirical.prob dist m in
      let m_end = !fr +. p in
      let salts = Stdx.Vec.create () in
      let overlaps = Stdx.Vec.create () in
      let continue = ref true in
      while !continue && !b < n_buckets do
        let b_end = !bucket_start +. widths.(!b) in
        let overlap = Float.min b_end m_end -. Float.max !bucket_start !fr in
        if overlap > 1e-15 then begin
          Stdx.Vec.push salts !b;
          Stdx.Vec.push overlaps overlap;
          by_bucket.(!b) <- m :: by_bucket.(!b)
        end;
        (* Advance only if this bucket is exhausted by the message. *)
        if b_end <= m_end +. 1e-15 then begin
          bucket_start := b_end;
          incr b
        end
        else continue := false
      done;
      if Stdx.Vec.length salts = 0 then begin
        (* Degenerate float-rounding corner: give the message the
           nearest bucket so every supported plaintext is encryptable. *)
        let fallback = min (max 0 (!b - 1)) (n_buckets - 1) in
        Stdx.Vec.push salts fallback;
        Stdx.Vec.push overlaps p;
        by_bucket.(fallback) <- m :: by_bucket.(fallback)
      end;
      let overlaps = Stdx.Vec.to_array overlaps in
      let total = Array.fold_left ( +. ) 0.0 overlaps in
      let salt_ids = Stdx.Vec.to_array salts in
      Hashtbl.replace per_message m
        (Salts.make ~salts:salt_ids ~weights:(Array.map (fun o -> o /. total) overlaps));
      Hashtbl.replace masses m (Array.fold_left (fun acc s -> acc +. widths.(s)) 0.0 salt_ids);
      fr := m_end)
    shuffled;
  { lambda; widths; per_message; by_bucket; masses }

let salts_for t m = Hashtbl.find_opt t.per_message m

let returned_mass t m = Option.value ~default:0.0 (Hashtbl.find_opt t.masses m)

let messages_sharing t bucket =
  if bucket < 0 || bucket >= Array.length t.by_bucket then
    invalid_arg "Bucket_layout.messages_sharing: bucket out of range";
  List.rev t.by_bucket.(bucket)

let validate t =
  let sum = Array.fold_left ( +. ) 0.0 t.widths in
  if Array.exists (fun w -> w <= 0.0) t.widths then Error "non-positive bucket width"
  else if Float.abs (sum -. 1.0) > 1e-6 then
    Error (Printf.sprintf "bucket widths sum to %.9f" sum)
  else begin
    let bad = ref None in
    Hashtbl.iter
      (fun m salts ->
        if !bad = None then
          match Salts.validate salts with
          | Ok () -> ()
          | Error e -> bad := Some (Printf.sprintf "message %S: %s" m e))
      t.per_message;
    match !bad with None -> Ok () | Some e -> Error e
  end
