(* wre — command-line companion for the WRE library.

   Subcommands:
     keygen       generate a fresh (k0, k1) master key pair
     schemes      list the salt-allocation schemes and their knobs
     lambda-for   compute the Poisson rate for a security target
     demo         end-to-end encrypt/search/decrypt on sample data
     stats        run a query workload and dump the metrics registry
     attack       run the frequency-analysis attack against a scheme
     init         create a durable store directory from a CSV
     open         recover a durable store; optionally run SQL on it *)

open Cmdliner

let seed_arg =
  let doc = "PRNG seed for reproducible runs." in
  Arg.(value & opt int64 42L & info [ "seed" ] ~docv:"SEED" ~doc)

let scheme_arg =
  let parse s = Wre.Scheme.of_string s |> Result.map_error (fun e -> `Msg e) in
  let print ppf k = Format.pp_print_string ppf (Wre.Scheme.to_string k) in
  let scheme_conv = Arg.conv (parse, print) in
  let doc = "WRE scheme: det, fixed-N, proportional-N, poisson-L, bucketized-L." in
  Arg.(value & opt scheme_conv (Wre.Scheme.Poisson 1000.0) & info [ "scheme" ] ~docv:"SCHEME" ~doc)

(* ---------------- keygen ---------------- *)

let keygen seed =
  let master = Crypto.Keys.generate (Stdx.Prng.create seed) in
  let k0, k1 = Crypto.Keys.export master in
  Printf.printf "k0 = %s\nk1 = %s\n" (Stdx.Bytes_util.to_hex k0) (Stdx.Bytes_util.to_hex k1);
  Printf.printf
    "store both secrets; every per-column subkey is derived from them with HKDF.\n"

let keygen_cmd =
  let doc = "Generate a fresh (k0, k1) master key pair." in
  Cmd.v (Cmd.info "keygen" ~doc) Term.(const keygen $ seed_arg)

(* ---------------- schemes ---------------- *)

let schemes () =
  let t =
    Stdx.Table_fmt.create
      [ "scheme"; "parameter"; "tags per plaintext"; "inference resistance"; "false positives" ]
  in
  List.iter
    (fun row -> Stdx.Table_fmt.add_row t row)
    [
      [ "det"; "-"; "1"; "none (broken by frequency analysis)"; "no" ];
      [ "fixed-N"; "N salts"; "N"; "weak (counts merely diluted)"; "no" ];
      [ "proportional-N"; "N total tags"; "~ N*P(m)"; "good, except integer aliasing"; "no" ];
      [ "poisson-L"; "rate lambda"; "~ L*P(m)+1"; "advantage <= e^(-L*tau)"; "no" ];
      [ "bucketized-L"; "rate lambda"; "~ L*P(m)+1"; "IND-CUDA (Theorem V.1)"; "yes, ~1/L" ];
    ];
  Stdx.Table_fmt.print t

let schemes_cmd =
  let doc = "Describe the available salt-allocation schemes." in
  Cmd.v (Cmd.info "schemes" ~doc) Term.(const schemes $ const ())

(* ---------------- lambda-for ---------------- *)

let lambda_for omega tau =
  if omega <= 0.0 || omega >= 1.0 then `Error (false, "omega must be in (0,1)")
  else if tau <= 0.0 || tau > 1.0 then `Error (false, "tau must be in (0,1]")
  else begin
    let lambda = Dist.Exponential.lambda_for_security ~omega ~tau in
    Printf.printf
      "lambda >= %.0f  (distinguishing advantage e^(-lambda*tau) <= %g for the rarest\n\
       plaintext, frequency tau = %g). Expect ~lambda + |M| search tags per column and\n\
       ~lambda*P(m)+1 tags per query.\n"
      (Float.round lambda) omega tau;
    `Ok ()
  end

let lambda_for_cmd =
  let omega =
    Arg.(value & opt float 0.01 & info [ "omega" ] ~docv:"OMEGA" ~doc:"Security target in (0,1).")
  in
  let tau =
    Arg.(
      value
      & opt float 0.001
      & info [ "tau" ] ~docv:"TAU" ~doc:"Smallest plaintext frequency in the column.")
  in
  let doc = "Poisson rate required for a security target (paper V-C)." in
  Cmd.v (Cmd.info "lambda-for" ~doc) Term.(ret (const lambda_for $ omega $ tau))

(* ---------------- demo ---------------- *)

(* Build the demo/stats encrypted table: in memory by default, or
   backed by a durable store directory when [--dir] is given (reopening
   an existing store skips the load entirely — the point of PR 4). *)
let sparta_edb ~dir ~seed ~kind data =
  let dist_of =
    Wre.Dist_est.of_rows ~schema:Sparta.Generator.schema
      ~columns:Sparta.Generator.encrypted_columns (Array.to_seq data)
  in
  match dir with
  | None ->
      let db = Sqldb.Database.create () in
      let master = Crypto.Keys.generate (Stdx.Prng.create seed) in
      let edb =
        Wre.Encrypted_db.create ~db ~name:"main" ~plain_schema:Sparta.Generator.schema
          ~key_column:"id" ~encrypted_columns:Sparta.Generator.encrypted_columns ~kind ~master
          ~dist_of ~seed ()
      in
      ignore (Wre.Encrypted_db.insert_batch edb data);
      Printf.printf "loaded %d census-like records under %s\n" (Array.length data)
        (Wre.Scheme.to_string kind);
      (None, edb)
  | Some dir -> (
      let store = Store.Engine.open_dir ~dir () in
      match Store.Engine.encrypted store "main" with
      | Some edb ->
          let r = Store.Engine.recovery store in
          Printf.printf
            "reopened %s: %d live rows (snapshot %s, %d WAL records replayed in %.2f ms)\n" dir
            (Sqldb.Table.live_count (Wre.Encrypted_db.table edb))
            (if r.snapshot_loaded then "loaded" else "absent")
            r.replayed (r.duration_ns /. 1e6);
          (Some store, edb)
      | None ->
          let master = Crypto.Keys.generate (Stdx.Prng.create seed) in
          let edb =
            Store.Engine.create_encrypted store ~name:"main"
              ~plain_schema:Sparta.Generator.schema ~key_column:"id"
              ~encrypted_columns:Sparta.Generator.encrypted_columns ~kind ~master ~dist_of ~seed
              ()
          in
          ignore (Wre.Encrypted_db.insert_batch edb data);
          Store.Engine.checkpoint store;
          Printf.printf "loaded %d census-like records under %s into %s (checkpointed)\n"
            (Array.length data) (Wre.Scheme.to_string kind) dir;
          (Some store, edb))

let demo seed kind rows dir =
  let gen = Sparta.Generator.create ~seed in
  let data = Array.of_seq (Sparta.Generator.rows gen ~n:rows) in
  let store, edb = sparta_edb ~dir ~seed ~kind data in
  let target = Sparta.Generator.column_string data.(0) ~column:"lname" in
  Printf.printf "searching lname = %s:\n  %s\n" target
    (Format.asprintf "%a" Sqldb.Predicate.pp
       (Wre.Encrypted_db.search_predicate edb ~column:"lname" target));
  let results, raw = Wre.Encrypted_db.search_rows edb ~column:"lname" target in
  Printf.printf "server returned %d rows, client kept %d after decryption\n"
    (Array.length raw.row_ids) (List.length results);
  List.iteri
    (fun i row ->
      if i < 5 then
        Printf.printf "  %s %s, %s (%s)\n"
          (Sparta.Generator.column_string row ~column:"fname")
          (Sparta.Generator.column_string row ~column:"lname")
          (Sparta.Generator.column_string row ~column:"city")
          (Sparta.Generator.column_string row ~column:"state"))
    results;
  Option.iter Store.Engine.close store

let opt_dir_arg =
  let doc =
    "Persist to a durable store directory (created on first run, recovered on later runs)."
  in
  Arg.(value & opt (some string) None & info [ "dir" ] ~docv:"DIR" ~doc)

let demo_cmd =
  let rows =
    Arg.(value & opt int 5000 & info [ "rows" ] ~docv:"N" ~doc:"Number of records to generate.")
  in
  let doc = "End-to-end encrypt, search and decrypt on generated census data." in
  Cmd.v (Cmd.info "demo" ~doc) Term.(const demo $ seed_arg $ scheme_arg $ rows $ opt_dir_arg)

(* ---------------- stats ---------------- *)

let trace_arg =
  let doc = "Enable query tracing and print the span tree to stderr." in
  Arg.(value & flag & info [ "trace" ] ~doc)

(* Single-quote a value for the SQL parser (doubling embedded quotes). *)
let sql_quote v =
  let buf = Buffer.create (String.length v + 2) in
  Buffer.add_char buf '\'';
  String.iter
    (fun c ->
      Buffer.add_char buf c;
      if c = '\'' then Buffer.add_char buf c)
    v;
  Buffer.add_char buf '\'';
  Buffer.contents buf

let stats seed kind rows queries tracing dir =
  Obs.Trace.set_enabled tracing;
  let gen = Sparta.Generator.create ~seed in
  let data = Array.of_seq (Sparta.Generator.rows gen ~n:rows) in
  let store, edb = sparta_edb ~dir ~seed ~kind data in
  (* A representative proxy workload so every layer's instruments move:
     point lookups, a two-column AND, a server-side OR union, a lazy
     LIMIT, and one degraded full scan. *)
  let proxy = Wre.Proxy.create edb in
  let g = Stdx.Prng.create (Int64.add seed 1L) in
  let run sql =
    match Wre.Proxy.execute proxy sql with
    | Ok _ -> ()
    | Error e -> Printf.eprintf "query failed (%s): %s\n" sql e
  in
  for _ = 1 to queries do
    let row = data.(Stdx.Prng.int g (Array.length data)) in
    let lname = sql_quote (Sparta.Generator.column_string row ~column:"lname") in
    let city = sql_quote (Sparta.Generator.column_string row ~column:"city") in
    (* state is not a searchable column: this one degrades to a
       residual-only full scan and moves the full_scan counter. *)
    let state = sql_quote (Sparta.Generator.column_string row ~column:"state") in
    run (Printf.sprintf "SELECT * FROM main WHERE lname = %s" lname);
    run (Printf.sprintf "SELECT id FROM main WHERE lname = %s AND city = %s" lname city);
    run (Printf.sprintf "SELECT * FROM main WHERE lname = %s OR city = %s" lname city);
    run (Printf.sprintf "SELECT * FROM main WHERE city = %s LIMIT 3" city);
    run (Printf.sprintf "SELECT id FROM main WHERE state = %s" state)
  done;
  Printf.printf "workload: %d rows under %s, %d query rounds\n\n" rows
    (Wre.Scheme.to_string kind) queries;
  Option.iter Store.Engine.close store;
  print_string (Obs.Metrics.render ());
  if tracing then begin
    prerr_string (Obs.Trace.render_tree ());
    Obs.Trace.set_enabled false
  end

let stats_cmd =
  let rows =
    Arg.(value & opt int 5000 & info [ "rows" ] ~docv:"N" ~doc:"Number of records to generate.")
  in
  let queries =
    Arg.(
      value & opt int 20
      & info [ "queries" ] ~docv:"N" ~doc:"Query-workload rounds before dumping the registry.")
  in
  let doc = "Run a query workload and dump the metrics registry (optionally a trace)." in
  Cmd.v (Cmd.info "stats" ~doc)
    Term.(const stats $ seed_arg $ scheme_arg $ rows $ queries $ trace_arg $ opt_dir_arg)

(* ---------------- attack ---------------- *)

let attack seed kind rows column =
  let gen = Sparta.Generator.create ~seed in
  let plaintexts =
    Array.of_seq
      (Seq.map (fun r -> Sparta.Generator.column_string r ~column) (Sparta.Generator.rows gen ~n:rows))
  in
  let dist = Dist.Empirical.of_values (Array.to_seq plaintexts) in
  let g = Stdx.Prng.create seed in
  let master = Crypto.Keys.generate g in
  let enc = Wre.Column_enc.create ~master ~column ~kind ~dist () in
  let snap = Attacks.Snapshot.of_column enc g ~plaintexts in
  Printf.printf "%s column, %d records, %d distinct values, %d distinct tags\n" column rows
    (Dist.Empirical.support_size dist)
    (Attacks.Snapshot.n_distinct_tags snap);
  List.iter
    (fun (name, guess) ->
      Printf.printf "  %-22s %s\n" name
        (Format.asprintf "%a" Attacks.Metrics.pp (Attacks.Metrics.score snap ~guess)))
    [
      ("rank matching", Attacks.Frequency.rank_matching snap);
      ("scheme-aware greedy", Attacks.Frequency.greedy_likelihood snap ~kind);
    ]

let attack_cmd =
  let rows =
    Arg.(value & opt int 20000 & info [ "rows" ] ~docv:"N" ~doc:"Number of records to attack.")
  in
  let column =
    Arg.(
      value & opt string "fname"
      & info [ "column" ] ~docv:"COL" ~doc:"Which census column to encrypt and attack.")
  in
  let doc = "Run frequency-analysis inference attacks against a scheme." in
  Cmd.v (Cmd.info "attack" ~doc) Term.(const attack $ seed_arg $ scheme_arg $ rows $ column)

(* ---------------- encrypt-csv / query-csv ---------------- *)

(* Column spec: "id:int,name:text,score:real?,photo:blob" — '?' marks
   nullable. *)
let parse_columns spec =
  let parse_one part =
    match String.split_on_char ':' part with
    | [ name; ty ] ->
        let nullable = String.length ty > 0 && ty.[String.length ty - 1] = '?' in
        let ty = if nullable then String.sub ty 0 (String.length ty - 1) else ty in
        let ty =
          match String.lowercase_ascii ty with
          | "int" -> Ok Sqldb.Value.TInt
          | "real" -> Ok Sqldb.Value.TReal
          | "text" -> Ok Sqldb.Value.TText
          | "blob" -> Ok Sqldb.Value.TBlob
          | other -> Error (Printf.sprintf "unknown type %S in column spec" other)
        in
        Result.map (fun ty -> { Sqldb.Schema.name; ty; nullable }) ty
    | _ -> Error (Printf.sprintf "malformed column spec %S (want name:type)" part)
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest -> ( match parse_one p with Ok c -> go (c :: acc) rest | Error e -> Error e)
  in
  go [] (String.split_on_char ',' spec)

let columns_to_spec schema =
  String.concat ","
    (List.map
       (fun (c : Sqldb.Schema.column) ->
         Printf.sprintf "%s:%s%s" c.name
           (String.lowercase_ascii (Sqldb.Value.ty_name c.ty))
           (if c.nullable then "?" else ""))
       (Array.to_list (Sqldb.Schema.columns schema)))

(* Sidecar: the client-side secret material an encrypted CSV needs to
   be queried later — keys, scheme, schema, and the per-column profiled
   distributions. INI-ish sections. *)
let write_sidecar ~path ~kind ~master ~schema ~key_column ~encrypted ~seed ~dists =
  let k0, k1 = Crypto.Keys.export master in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[wre]\n";
  Buffer.add_string buf (Printf.sprintf "scheme=%s\n" (Wre.Scheme.to_string kind));
  Buffer.add_string buf (Printf.sprintf "k0=%s\n" (Stdx.Bytes_util.to_hex k0));
  Buffer.add_string buf (Printf.sprintf "k1=%s\n" (Stdx.Bytes_util.to_hex k1));
  Buffer.add_string buf (Printf.sprintf "seed=%Ld\n" seed);
  Buffer.add_string buf (Printf.sprintf "key_column=%s\n" key_column);
  Buffer.add_string buf (Printf.sprintf "encrypted=%s\n" (String.concat "," encrypted));
  Buffer.add_string buf (Printf.sprintf "columns=%s\n" (columns_to_spec schema));
  List.iter
    (fun (col, dist) ->
      Buffer.add_string buf (Printf.sprintf "[dist %s]\n" col);
      List.iter
        (fun (v, c) -> Buffer.add_string buf (Sqldb.Csv.render [ [ v; string_of_int c ] ]))
        (Dist.Empirical.to_counts dist))
    dists;
  Store.Io.atomic_write_text ~path (Buffer.contents buf)

let read_file path = In_channel.with_open_text path In_channel.input_all

let parse_sidecar text =
  let lines = String.split_on_char '\n' text in
  let kv = Hashtbl.create 16 in
  let dists = Hashtbl.create 8 in
  let current = ref `Main in
  let err = ref None in
  List.iter
    (fun line ->
      if !err = None && line <> "" then
        if line.[0] = '[' then begin
          if line = "[wre]" then current := `Main
          else if String.length line > 7 && String.sub line 0 6 = "[dist " then begin
            let col = String.sub line 6 (String.length line - 7) in
            Hashtbl.replace dists col [];
            current := `Dist col
          end
          else err := Some (Printf.sprintf "unknown sidecar section %S" line)
        end
        else begin
          match !current with
          | `Main -> (
              match String.index_opt line '=' with
              | Some i ->
                  Hashtbl.replace kv (String.sub line 0 i)
                    (String.sub line (i + 1) (String.length line - i - 1))
              | None -> err := Some (Printf.sprintf "malformed sidecar line %S" line))
          | `Dist col -> (
              match Sqldb.Csv.parse (line ^ "\n") with
              | Ok [ [ v; c ] ] -> (
                  match int_of_string_opt c with
                  | Some c -> Hashtbl.replace dists col ((v, c) :: Hashtbl.find dists col)
                  | None -> err := Some (Printf.sprintf "bad count in %S" line))
              | _ -> err := Some (Printf.sprintf "bad dist line %S" line))
        end)
    lines;
  match !err with
  | Some e -> Error e
  | None ->
      let get k =
        match Hashtbl.find_opt kv k with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "sidecar is missing %S" k)
      in
      let ( let* ) = Result.bind in
      let* scheme_str = get "scheme" in
      let* kind = Wre.Scheme.of_string scheme_str in
      let* k0 = get "k0" in
      let* k1 = get "k1" in
      let* seed = get "seed" in
      let* key_column = get "key_column" in
      let* encrypted = get "encrypted" in
      let* columns = get "columns" in
      let* cols = parse_columns columns in
      let schema = Sqldb.Schema.create cols in
      let dist_of col =
        match Hashtbl.find_opt dists col with
        | Some counts -> Dist.Empirical.of_counts counts
        | None -> failwith (Printf.sprintf "sidecar has no distribution for %S" col)
      in
      Ok
        ( kind,
          Crypto.Keys.of_raw ~k0:(Stdx.Bytes_util.of_hex k0) ~k1:(Stdx.Bytes_util.of_hex k1),
          Int64.of_string seed,
          key_column,
          String.split_on_char ',' encrypted,
          schema,
          dist_of )

let encrypt_csv input output sidecar columns_spec key_column encrypted_spec seed kind =
  let ( let* ) = Result.bind in
  let result =
    let* cols = parse_columns columns_spec in
    let schema = Sqldb.Schema.create cols in
    let encrypted = String.split_on_char ',' encrypted_spec in
    let* cells = Sqldb.Csv.parse (read_file input) in
    let* rows = Sqldb.Csv.typed_rows ~schema ~header:true cells in
    let dist_of = Wre.Dist_est.of_rows ~schema ~columns:encrypted (List.to_seq rows) in
    let master = Crypto.Keys.generate (Stdx.Prng.create seed) in
    let db = Sqldb.Database.create () in
    let edb =
      Wre.Encrypted_db.create ~fallback:`Min_frequency ~db ~name:"t" ~plain_schema:schema
        ~key_column ~encrypted_columns:encrypted ~kind ~master ~dist_of ~seed ()
    in
    List.iter (fun r -> ignore (Wre.Encrypted_db.insert edb r)) rows;
    let table = Wre.Encrypted_db.table edb in
    let enc_schema = Wre.Encrypted_db.encrypted_schema edb in
    let enc_rows =
      List.init (Sqldb.Table.row_count table) (fun i -> Sqldb.Table.peek_row table i)
    in
    Store.Io.atomic_write_text ~path:output
      (Sqldb.Csv.render (Sqldb.Csv.header_of enc_schema :: Sqldb.Csv.untyped_rows enc_rows));
    write_sidecar ~path:sidecar ~kind ~master ~schema ~key_column ~encrypted ~seed
      ~dists:(List.map (fun c -> (c, dist_of c)) encrypted);
    Printf.printf "encrypted %d rows -> %s (key material in %s)\n" (List.length rows) output
      sidecar;
    Ok ()
  in
  match result with Ok () -> `Ok () | Error e -> `Error (false, e)

(* Rebuild one encrypted table (client state from its sidecar, rows
   from its encrypted CSV) inside [db] under [name]. *)
let load_encrypted_csv db ~name ~input ~sidecar =
  let ( let* ) = Result.bind in
  let* kind, master, seed, key_column, encrypted, schema, dist_of =
    parse_sidecar (read_file sidecar)
  in
  let edb =
    Wre.Encrypted_db.create ~fallback:`Min_frequency ~db ~name ~plain_schema:schema ~key_column
      ~encrypted_columns:encrypted ~kind ~master ~dist_of ~seed ()
  in
  let enc_schema = Wre.Encrypted_db.encrypted_schema edb in
  let* cells = Sqldb.Csv.parse (read_file input) in
  let* enc_rows = Sqldb.Csv.typed_rows ~schema:enc_schema ~header:true cells in
  List.iter (fun r -> ignore (Wre.Encrypted_db.insert_encrypted edb r)) enc_rows;
  Ok edb

let query_csv input sidecar table input2 sidecar2 table2 sql domains tracing =
  Obs.Trace.set_enabled tracing;
  let ( let* ) = Result.bind in
  let result =
    let* () =
      if domains >= 1 then Ok () else Error "--domains must be at least 1"
    in
    let db = Sqldb.Database.create () in
    let* edb = load_encrypted_csv db ~name:table ~input ~sidecar in
    let* edbs =
      match (input2, sidecar2) with
      | None, None -> Ok [ edb ]
      | Some input2, Some sidecar2 ->
          let* edb2 = load_encrypted_csv db ~name:table2 ~input:input2 ~sidecar:sidecar2 in
          Ok [ edb; edb2 ]
      | _ -> Error "--input2 and --sidecar2 must be given together"
    in
    let proxy = Wre.Proxy.create_multi edbs in
    let* r =
      if domains = 1 then Wre.Proxy.execute proxy sql
      else
        Stdx.Task_pool.with_pool ~domains (fun pool ->
            Wre.Proxy.execute_snapshot ~pool proxy sql)
    in
    print_string (Sqldb.Csv.render (r.columns :: Sqldb.Csv.untyped_rows r.rows));
    Printf.eprintf "(%d rows; server handled %d encrypted rows)\n" (List.length r.rows)
      r.server_rows;
    Ok ()
  in
  if tracing then begin
    prerr_string (Obs.Trace.render_tree ());
    Obs.Trace.set_enabled false
  end;
  match result with Ok () -> `Ok () | Error e -> `Error (false, e)

let encrypt_csv_cmd =
  let input =
    Arg.(
      required
      & opt (some file) None
      & info [ "input" ] ~docv:"FILE" ~doc:"Plaintext CSV with header row.")
  in
  let output =
    Arg.(
      value & opt string "encrypted.csv"
      & info [ "output" ] ~docv:"FILE" ~doc:"Encrypted CSV to write.")
  in
  let sidecar =
    Arg.(
      value & opt string "wre-keys.sidecar"
      & info [ "sidecar" ] ~docv:"FILE" ~doc:"Key material + distributions (keep secret).")
  in
  let columns =
    Arg.(
      required
      & opt (some string) None
      & info [ "columns" ] ~docv:"SPEC" ~doc:"Schema, e.g. id:int,name:text,notes:text?.")
  in
  let key_column =
    Arg.(
      value & opt string "id"
      & info [ "key-column" ] ~docv:"COL" ~doc:"Plaintext integer key column.")
  in
  let encrypted =
    Arg.(
      required
      & opt (some string) None
      & info [ "encrypt" ] ~docv:"COLS" ~doc:"Comma-separated searchable text columns.")
  in
  let doc = "Encrypt a CSV file into a searchable encrypted CSV + key sidecar." in
  Cmd.v (Cmd.info "encrypt-csv" ~doc)
    Term.(
      ret
        (const encrypt_csv $ input $ output $ sidecar $ columns $ key_column $ encrypted
       $ seed_arg $ scheme_arg))

let query_csv_cmd =
  let input =
    Arg.(required & opt (some file) None & info [ "input" ] ~docv:"FILE" ~doc:"Encrypted CSV.")
  in
  let sidecar =
    Arg.(
      required & opt (some file) None
      & info [ "sidecar" ] ~docv:"FILE" ~doc:"Sidecar from encrypt-csv.")
  in
  let table =
    Arg.(
      value & opt string "t"
      & info [ "table" ] ~docv:"NAME" ~doc:"Table name the SQL refers to the first CSV by.")
  in
  let input2 =
    Arg.(
      value
      & opt (some file) None
      & info [ "input2" ] ~docv:"FILE" ~doc:"Second encrypted CSV, for two-table JOIN queries.")
  in
  let sidecar2 =
    Arg.(
      value
      & opt (some file) None
      & info [ "sidecar2" ] ~docv:"FILE" ~doc:"Sidecar of the second CSV.")
  in
  let table2 =
    Arg.(
      value & opt string "t2"
      & info [ "table2" ] ~docv:"NAME" ~doc:"Table name the SQL refers to the second CSV by.")
  in
  let sql =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SQL"
          ~doc:
            "Plaintext SELECT, e.g. \"SELECT * FROM t WHERE name = 'Alice'\" — or, with \
             --input2/--sidecar2, a JOIN such as \"SELECT * FROM t JOIN t2 ON t.name = \
             t2.name\" (result headers are qualified: t.id, t.name, t2.id, …).")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Serve the SELECT from a frozen snapshot view with $(docv) reader domains \
             (index probes, JOIN bucket probes and decryption fan out; results are \
             identical to the sequential path).")
  in
  let doc = "Query one or two encrypted CSVs with plaintext SQL (rewriting proxy + decryption)." in
  Cmd.v (Cmd.info "query-csv" ~doc)
    Term.(
      ret
        (const query_csv $ input $ sidecar $ table $ input2 $ sidecar2 $ table2 $ sql $ domains
       $ trace_arg))

(* ---------------- init / open (durable store) ---------------- *)

let store_exists dir =
  Sys.file_exists (Filename.concat dir "snapshot.bin")
  || Sys.file_exists (Filename.concat dir "wal.bin")

let init_store dir input columns_spec key_column encrypted_spec seed kind =
  let ( let* ) = Result.bind in
  let result =
    if store_exists dir then
      Error (Printf.sprintf "%s already holds a store; use 'wre open --dir %s'" dir dir)
    else
      let* cols = parse_columns columns_spec in
      let schema = Sqldb.Schema.create cols in
      let encrypted = String.split_on_char ',' encrypted_spec in
      let* cells = Sqldb.Csv.parse (read_file input) in
      let* rows = Sqldb.Csv.typed_rows ~schema ~header:true cells in
      let dist_of = Wre.Dist_est.of_rows ~schema ~columns:encrypted (List.to_seq rows) in
      let master = Crypto.Keys.generate (Stdx.Prng.create seed) in
      let store = Store.Engine.open_dir ~dir () in
      let edb =
        Store.Engine.create_encrypted store ~fallback:`Min_frequency ~name:"t"
          ~plain_schema:schema ~key_column ~encrypted_columns:encrypted ~kind ~master ~dist_of
          ~seed ()
      in
      ignore (Wre.Encrypted_db.insert_batch edb (Array.of_list rows));
      Store.Engine.checkpoint store;
      Store.Engine.close store;
      Printf.printf "initialized %s: table \"t\", %d rows under %s (checkpointed)\n" dir
        (List.length rows) (Wre.Scheme.to_string kind);
      Ok ()
  in
  match result with Ok () -> `Ok () | Error e -> `Error (false, e)

(* Recover a store and print what recovery did; the optional flags make
   this the one binary the CI crash-recovery smoke needs: [--sql] runs a
   statement through the rewriting proxy, [--kill9] flushes the WAL and
   then dies without closing, so the next open exercises WAL replay. *)
let open_store dir sql do_checkpoint do_vacuum kill9 =
  let ( let* ) = Result.bind in
  let result =
    if not (store_exists dir) then
      Error (Printf.sprintf "%s does not hold a store; use 'wre init --dir %s'" dir dir)
    else begin
      let store = Store.Engine.open_dir ~dir () in
      let r = Store.Engine.recovery store in
      Printf.printf "opened %s: snapshot %s, %d WAL records replayed in %.2f ms\n" dir
        (if r.Store.Engine.snapshot_loaded then "loaded" else "absent")
        r.Store.Engine.replayed
        (r.Store.Engine.duration_ns /. 1e6);
      List.iter
        (fun t ->
          Printf.printf "  table %s: %d live rows, %d heap slots\n" (Sqldb.Table.name t)
            (Sqldb.Table.live_count t) (Sqldb.Table.row_count t))
        (Sqldb.Database.tables (Store.Engine.db store));
      let* () =
        match sql with
        | None -> Ok ()
        | Some q -> (
            match Store.Engine.encrypted_names store with
            | [] -> Error "store has no encrypted tables to query"
            | names ->
                (* All encrypted tables, so --sql can run two-table
                   JOINs against a multi-table store. *)
                let proxy =
                  Wre.Proxy.create_multi
                    (List.map (fun n -> Option.get (Store.Engine.encrypted store n)) names)
                in
                let* res = Wre.Proxy.execute proxy q in
                print_string (Sqldb.Csv.render (res.columns :: Sqldb.Csv.untyped_rows res.rows));
                Printf.eprintf "(%d rows, %d affected)\n" (List.length res.rows) res.affected;
                Ok ())
      in
      if do_vacuum then
        List.iter Sqldb.Table.vacuum (Sqldb.Database.tables (Store.Engine.db store));
      if do_checkpoint then Store.Engine.checkpoint store;
      if kill9 then begin
        (* Durability point: everything acked is on disk, but no
           checkpoint and no clean shutdown — recovery must replay. *)
        Store.Engine.flush store;
        Unix.kill (Unix.getpid ()) Sys.sigkill
      end;
      Store.Engine.close store;
      Ok ()
    end
  in
  match result with Ok () -> `Ok () | Error e -> `Error (false, e)

let req_dir_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "dir" ] ~docv:"DIR" ~doc:"Durable store directory.")

let init_cmd =
  let input =
    Arg.(
      required
      & opt (some file) None
      & info [ "input" ] ~docv:"FILE" ~doc:"Plaintext CSV with header row.")
  in
  let columns =
    Arg.(
      required
      & opt (some string) None
      & info [ "columns" ] ~docv:"SPEC" ~doc:"Schema, e.g. id:int,name:text,notes:text?.")
  in
  let key_column =
    Arg.(
      value & opt string "id"
      & info [ "key-column" ] ~docv:"COL" ~doc:"Plaintext integer key column.")
  in
  let encrypted =
    Arg.(
      required
      & opt (some string) None
      & info [ "encrypt" ] ~docv:"COLS" ~doc:"Comma-separated searchable text columns.")
  in
  let doc = "Create a durable encrypted store directory from a plaintext CSV." in
  Cmd.v (Cmd.info "init" ~doc)
    Term.(
      ret
        (const init_store $ req_dir_arg $ input $ columns $ key_column $ encrypted $ seed_arg
       $ scheme_arg))

let open_cmd =
  let sql =
    Arg.(
      value
      & opt (some string) None
      & info [ "sql" ] ~docv:"SQL" ~doc:"Statement to run through the rewriting proxy.")
  in
  let checkpoint =
    Arg.(value & flag & info [ "checkpoint" ] ~doc:"Write a snapshot and truncate the WAL.")
  in
  let vacuum =
    Arg.(value & flag & info [ "vacuum" ] ~doc:"Reclaim dead rows in every table first.")
  in
  let kill9 =
    Arg.(
      value & flag
      & info [ "kill9" ]
          ~doc:"Flush the WAL, then SIGKILL this process (crash-recovery testing).")
  in
  let doc = "Recover a durable store, report what recovery did, optionally run SQL." in
  Cmd.v (Cmd.info "open" ~doc)
    Term.(ret (const open_store $ req_dir_arg $ sql $ checkpoint $ vacuum $ kill9))

(* ---------------- connect (wre_server client) ---------------- *)

let connect_run socket sql show_stats =
  let ( let* ) = Result.bind in
  let result =
    let* c = Server.Client.connect ~socket_path:socket () in
    Fun.protect
      ~finally:(fun () -> Server.Client.close c)
      (fun () ->
        Printf.eprintf "session %Ld: tables %s\n" (Server.Client.session_id c)
          (String.concat ", " (Server.Client.tables c));
        let run_one q =
          let* r = Server.Client.query c q in
          print_string
            (Sqldb.Csv.render
               (r.Server.Wire.columns :: Sqldb.Csv.untyped_rows r.Server.Wire.rows));
          Printf.eprintf "(%d rows, %d affected; server handled %d encrypted rows)\n"
            (List.length r.Server.Wire.rows)
            r.Server.Wire.affected r.Server.Wire.server_rows;
          Ok ()
        in
        let* () =
          match sql with
          | Some q -> run_one q
          | None when show_stats -> Ok ()
          | None ->
              (* One statement per stdin line (scripted use). *)
              let rec loop () =
                match In_channel.input_line stdin with
                | None -> Ok ()
                | Some line when String.trim line = "" -> loop ()
                | Some line ->
                    let* () = run_one line in
                    loop ()
              in
              loop ()
        in
        if show_stats then
          let* text = Server.Client.stats c in
          print_string text;
          Ok ()
        else Ok ())
  in
  match result with Ok () -> `Ok () | Error e -> `Error (false, e)

let connect_cmd =
  let socket =
    Arg.(
      value
      & opt string "/tmp/wre_server.sock"
      & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket of a running wre_server.")
  in
  let sql =
    Arg.(
      value
      & opt (some string) None
      & info [ "sql" ] ~docv:"SQL"
          ~doc:"Statement to run remotely; without it, statements are read from stdin.")
  in
  let stats =
    Arg.(value & flag & info [ "stats" ] ~doc:"Dump the server's metrics registry at the end.")
  in
  let doc = "Run SQL against a running wre_server over its Unix-domain socket." in
  Cmd.v (Cmd.info "connect" ~doc) Term.(ret (const connect_run $ socket $ sql $ stats))

let () =
  let doc = "weakly randomized encryption (DSN 2019) toolkit" in
  let info = Cmd.info "wre" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            keygen_cmd;
            schemes_cmd;
            lambda_for_cmd;
            demo_cmd;
            stats_cmd;
            attack_cmd;
            encrypt_csv_cmd;
            query_csv_cmd;
            init_cmd;
            open_cmd;
            connect_cmd;
          ]))
