(* wre_server — serve a durable encrypted store to multiple clients
   over a Unix-domain socket, batching concurrent reads into shared
   snapshot epochs (see lib/server and DESIGN.md §5h).

   Runs until SIGTERM/SIGINT, then shuts down cleanly: sessions are
   kicked, queued queries drained, the engine closed. kill -9 is the
   crash case — recovery on the next open replays the WAL. *)

open Cmdliner

let store_exists dir =
  Sys.file_exists (Filename.concat dir "snapshot.bin")
  || Sys.file_exists (Filename.concat dir "wal.bin")

let serve dir socket domains window_us batch_max =
  if not (store_exists dir) then
    `Error (false, Printf.sprintf "%s does not hold a store; use 'wre init --dir %s'" dir dir)
  else begin
    let store = Store.Engine.open_dir ~dir () in
    let cfg =
      {
        Server.Daemon.socket_path = socket;
        domains;
        window_ns = float_of_int window_us *. 1e3;
        batch_max;
        backlog = 512;
      }
    in
    match Server.Daemon.start cfg store with
    | Error e ->
        Store.Engine.close store;
        `Error (false, e)
    | Ok d ->
        let stop_requested = Atomic.make false in
        let on_signal _ = Atomic.set stop_requested true in
        Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
        Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
        let r = Store.Engine.recovery store in
        Printf.printf "wre_server: recovered %s (%d WAL records), serving on %s\n" dir
          r.Store.Engine.replayed socket;
        Printf.printf "wre_server: ready (domains=%d window=%dus batch_max=%d)\n%!" domains
          window_us batch_max;
        (* Signal handlers only set the flag; the main thread polls so
           the actual teardown never runs in handler context. *)
        while not (Atomic.get stop_requested) do
          Thread.delay 0.05
        done;
        Printf.printf "wre_server: shutting down\n%!";
        Server.Daemon.stop d;
        Store.Engine.close store;
        `Ok ()
  end

let () =
  let dir =
    Arg.(
      required
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR" ~doc:"Durable store directory (from 'wre init').")
  in
  let socket =
    Arg.(
      value
      & opt string "/tmp/wre_server.sock"
      & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path to listen on.")
  in
  let domains =
    Arg.(
      value & opt int 4
      & info [ "domains" ] ~docv:"N" ~doc:"Task-pool domains fanning each read batch.")
  in
  let window_us =
    Arg.(
      value & opt int 1000
      & info [ "window-us" ] ~docv:"USEC"
          ~doc:"Admission window: how long a read batch stays open for latecomers.")
  in
  let batch_max =
    Arg.(
      value & opt int 256
      & info [ "batch-max" ] ~docv:"N" ~doc:"Maximum reads coalesced into one snapshot epoch.")
  in
  let doc = "serve an encrypted store to concurrent clients with batched admission" in
  let info = Cmd.info "wre_server" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.v info Term.(ret (const serve $ dir $ socket $ domains $ window_us $ batch_max))))
