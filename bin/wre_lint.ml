(* wre-lint driver: walks the given roots, runs the project-level
   R1–R9 pipeline (Lint.Project), prints diagnostics — as text, --json,
   or --sarif — and exits non-zero when any finding is not covered by
   the allowlist. Machine-readable output goes to stdout; errors,
   allowlist warnings and the --stats table go to stderr, so CI can
   redirect stdout straight into an artifact. Exit codes: 0 clean,
   1 findings, 2 errors (parse failures, bad flags, and under --ci,
   stale allowlist entries). *)

let usage =
  "wre_lint [--rules R1,R2,...] [--allow FILE] [--json|--sarif] [--stats] [--ci] \
   [--list-rules] PATH..."

let parse_rules s =
  let toks = String.split_on_char ',' s |> List.filter (fun t -> String.trim t <> "") in
  List.map
    (fun t ->
      match Lint.Rule.of_string t with
      | Some r -> r
      | None ->
          Printf.eprintf "wre_lint: unknown rule %S (have: R1..R9)\n" t;
          exit 2)
    toks

(* ---------------- machine-readable output ---------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let severity_of d = Lint.Rule.(severity_string (severity d.Lint.Diagnostic.rule))

let print_json (result : Lint.Project.result) kept =
  let finding (d : Lint.Diagnostic.t) =
    Printf.sprintf
      {|    {"rule": "%s", "severity": "%s", "file": "%s", "line": %d, "col": %d, "message": "%s"}|}
      (Lint.Rule.to_string d.rule) (severity_of d) (json_escape d.file) d.line d.col
      (json_escape d.message)
  in
  let stat (s : Lint.Project.rule_stat) =
    Printf.sprintf {|    {"rule": "%s", "hits": %d, "wall_ms": %.3f}|}
      (Lint.Rule.to_string s.sr_rule) s.hits (s.wall_ns /. 1e6)
  in
  Printf.printf
    "{\n  \"tool\": \"wre-lint\",\n  \"units\": %d,\n  \"summary_ms\": %.3f,\n  \"findings\": [\n%s\n  ],\n  \"stats\": [\n%s\n  ]\n}\n"
    result.n_units
    (result.summary_ns /. 1e6)
    (String.concat ",\n" (List.map finding kept))
    (String.concat ",\n" (List.map stat result.stats))

let print_sarif kept =
  let rule_meta r =
    Printf.sprintf
      {|          {"id": "%s", "shortDescription": {"text": "%s"}, "defaultConfiguration": {"level": "%s"}}|}
      (Lint.Rule.to_string r)
      (json_escape (Lint.Rule.describe r))
      Lint.Rule.(severity_string (severity r))
  in
  let sarif_result (d : Lint.Diagnostic.t) =
    Printf.sprintf
      {|        {"ruleId": "%s", "level": "%s", "message": {"text": "%s"}, "locations": [{"physicalLocation": {"artifactLocation": {"uri": "%s"}, "region": {"startLine": %d, "startColumn": %d}}}]}|}
      (Lint.Rule.to_string d.rule) (severity_of d) (json_escape d.message)
      (json_escape d.file) d.line (d.col + 1)
  in
  Printf.printf
    "{\n\
    \  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n\
    \  \"version\": \"2.1.0\",\n\
    \  \"runs\": [\n\
    \    {\n\
    \      \"tool\": {\n\
    \        \"driver\": {\n\
    \          \"name\": \"wre-lint\",\n\
    \          \"rules\": [\n\
     %s\n\
    \          ]\n\
    \        }\n\
    \      },\n\
    \      \"results\": [\n\
     %s\n\
    \      ]\n\
    \    }\n\
    \  ]\n\
     }\n"
    (String.concat ",\n" (List.map rule_meta Lint.Rule.all))
    (String.concat ",\n" (List.map sarif_result kept))

let print_stats (result : Lint.Project.result) =
  Printf.eprintf "wre_lint: %d unit(s), summaries %.2f ms\n" result.n_units
    (result.summary_ns /. 1e6);
  Printf.eprintf "  rule  hits  wall_ms\n";
  List.iter
    (fun (s : Lint.Project.rule_stat) ->
      Printf.eprintf "  %-4s  %4d  %7.2f\n" (Lint.Rule.to_string s.sr_rule) s.hits
        (s.wall_ns /. 1e6))
    result.stats

(* ---------------- driver ---------------- *)

type format = Text | Json | Sarif

let () =
  let rules = ref Lint.Rule.all in
  let allow_file = ref None in
  let roots = ref [] in
  let format = ref Text in
  let stats = ref false in
  let ci = ref false in
  let list_rules () =
    List.iter
      (fun r ->
        Printf.printf "%s  [%s] %s\n" (Lint.Rule.to_string r)
          Lint.Rule.(severity_string (severity r))
          (Lint.Rule.describe r))
      Lint.Rule.all;
    exit 0
  in
  let spec =
    [
      ( "--rules",
        Arg.String (fun s -> rules := parse_rules s),
        "R1,R2,... enable only these rules (default: all)" );
      ("--allow", Arg.String (fun s -> allow_file := Some s), "FILE allowlist of deliberate exceptions");
      ("--json", Arg.Unit (fun () -> format := Json), " machine-readable findings + stats on stdout");
      ("--sarif", Arg.Unit (fun () -> format := Sarif), " SARIF 2.1.0 report on stdout");
      ("--stats", Arg.Set stats, " per-rule hit/timing table on stderr");
      ("--ci", Arg.Set ci, " strict mode: stale allowlist entries are a hard error");
      ("--list-rules", Arg.Unit list_rules, " describe the rules and exit");
    ]
  in
  Arg.parse spec (fun r -> roots := r :: !roots) usage;
  let roots = List.rev !roots in
  if roots = [] then begin
    Printf.eprintf "wre_lint: no paths given\n%s\n" usage;
    exit 2
  end;
  let allow =
    match !allow_file with
    | None -> Lint.Allowlist.empty
    | Some f -> (
        match Lint.Allowlist.load f with
        | Ok a -> a
        | Error e ->
            Printf.eprintf "wre_lint: cannot load allowlist: %s\n" e;
            exit 2)
  in
  let result = Lint.Project.lint_paths ~rules:!rules roots in
  List.iter (fun e -> Printf.eprintf "wre_lint: error: %s\n" e) result.errors;
  let kept = List.filter (fun d -> not (Lint.Allowlist.suppresses allow d)) result.diagnostics in
  (match !format with
  | Text -> List.iter (fun d -> print_endline (Lint.Diagnostic.to_string d)) kept
  | Json -> print_json result kept
  | Sarif -> print_sarif kept);
  if !stats then print_stats result;
  let stale = Lint.Allowlist.unused allow result.diagnostics in
  List.iter
    (fun e ->
      Printf.eprintf "wre_lint: %s: unused allowlist entry '%s' (%s)\n"
        (if !ci then "error" else "warning")
        (Lint.Allowlist.describe_entry e) e.Lint.Allowlist.source)
    stale;
  if result.errors <> [] || (!ci && stale <> []) then exit 2;
  if kept <> [] then begin
    Printf.eprintf "wre_lint: %d finding(s) across %d unit(s)\n" (List.length kept)
      result.n_units;
    exit 1
  end
