(* wre-lint driver: walks the given roots, runs the R1–R5 rules, prints
   file:line:col diagnostics and exits non-zero when any finding is not
   covered by the allowlist — the CI contract behind `dune build @lint`. *)

let usage = "wre_lint [--rules R1,R2,...] [--allow FILE] [--list-rules] PATH..."

let parse_rules s =
  let toks = String.split_on_char ',' s |> List.filter (fun t -> String.trim t <> "") in
  List.map
    (fun t ->
      match Lint.Rule.of_string t with
      | Some r -> r
      | None ->
          Printf.eprintf "wre_lint: unknown rule %S (have: R1 R2 R3 R4 R5)\n" t;
          exit 2)
    toks

let () =
  let rules = ref Lint.Rule.all in
  let allow_file = ref None in
  let roots = ref [] in
  let list_rules () =
    List.iter
      (fun r -> Printf.printf "%s  %s\n" (Lint.Rule.to_string r) (Lint.Rule.describe r))
      Lint.Rule.all;
    exit 0
  in
  let spec =
    [
      ( "--rules",
        Arg.String (fun s -> rules := parse_rules s),
        "R1,R2,... enable only these rules (default: all)" );
      ("--allow", Arg.String (fun s -> allow_file := Some s), "FILE allowlist of deliberate exceptions");
      ("--list-rules", Arg.Unit list_rules, " describe the rules and exit");
    ]
  in
  Arg.parse spec (fun r -> roots := r :: !roots) usage;
  let roots = List.rev !roots in
  if roots = [] then begin
    Printf.eprintf "wre_lint: no paths given\n%s\n" usage;
    exit 2
  end;
  let allow =
    match !allow_file with
    | None -> Lint.Allowlist.empty
    | Some f -> (
        match Lint.Allowlist.load f with
        | Ok a -> a
        | Error e ->
            Printf.eprintf "wre_lint: cannot load allowlist: %s\n" e;
            exit 2)
  in
  let diags, errors = Lint.Engine.lint_paths ~rules:!rules roots in
  List.iter (fun e -> Printf.eprintf "wre_lint: error: %s\n" e) errors;
  let kept = List.filter (fun d -> not (Lint.Allowlist.suppresses allow d)) diags in
  List.iter (fun d -> print_endline (Lint.Diagnostic.to_string d)) kept;
  List.iter
    (fun e ->
      Printf.eprintf "wre_lint: warning: unused allowlist entry '%s' (%s)\n"
        (Lint.Allowlist.describe_entry e) e.Lint.Allowlist.source)
    (Lint.Allowlist.unused allow diags);
  if errors <> [] then exit 2;
  if kept <> [] then begin
    Printf.eprintf "wre_lint: %d finding(s) in %d file(s) scanned\n" (List.length kept)
      (List.length roots);
    exit 1
  end
